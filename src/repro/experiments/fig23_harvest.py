"""Fig. 23 + Table III: harvesting benefit breakdown and overhead.

Fig. 23 traces the speedup of each operator under Neu10 relative to
Neu10-NH (same pair, same allocations): operators above 1.0 gained from
harvesting spare engines, operators below 1.0 were slowed by
interference.  Table III quantifies the time a workload is *blocked*
because a harvester held its engines (reclaim penalty), as a fraction of
end-to-end execution -- small (0-10%) and always outweighed by the
harvesting benefit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments import expected
from repro.experiments.common import DEFAULT_TARGET_REQUESTS, run_pair_cached
from repro.serving.server import SCHEME_NEU10, SCHEME_NEU10_NH


@dataclass
class HarvestBreakdown:
    pair: str
    #: tenant index -> sorted per-op speedups (Neu10 vs Neu10-NH).
    speedups: Dict[int, List[float]]
    #: tenant index -> blocked-time fraction under Neu10 (Table III).
    blocked: Dict[int, float]
    #: tenant index -> workload abbreviation.
    names: Dict[int, str]

    def fraction_above(self, tenant: int, threshold: float = 1.0) -> float:
        ops = self.speedups.get(tenant, [])
        if not ops:
            return 0.0
        return sum(1 for s in ops if s > threshold) / len(ops)

    def median_speedup(self, tenant: int) -> float:
        ops = sorted(self.speedups.get(tenant, []))
        if not ops:
            return 0.0
        return ops[len(ops) // 2]


def run(
    w1: str,
    w2: str,
    target_requests: int = DEFAULT_TARGET_REQUESTS,
) -> HarvestBreakdown:
    pair_run = run_pair_cached(
        w1, w2, (SCHEME_NEU10, SCHEME_NEU10_NH), target_requests
    )
    neu = pair_run.results[SCHEME_NEU10]
    ref = pair_run.results[SCHEME_NEU10_NH]
    speedups: Dict[int, List[float]] = {}
    blocked: Dict[int, float] = {}
    names: Dict[int, str] = {}
    assert neu.op_durations is not None and ref.op_durations is not None
    for tenant_idx in (0, 1):
        names[tenant_idx] = neu.tenants[tenant_idx].name
        blocked[tenant_idx] = neu.tenants[tenant_idx].blocked_fraction
        neu_ops = neu.op_durations.get(tenant_idx, {})
        ref_ops = ref.op_durations.get(tenant_idx, {})
        per_op: List[float] = []
        for op_name, ref_durations in ref_ops.items():
            neu_durations = neu_ops.get(op_name)
            if not neu_durations or not ref_durations:
                continue
            ref_mean = sum(ref_durations) / len(ref_durations)
            neu_mean = sum(neu_durations) / len(neu_durations)
            if neu_mean > 0:
                per_op.append(ref_mean / neu_mean)
        speedups[tenant_idx] = sorted(per_op)
    return HarvestBreakdown(
        pair=pair_run.label, speedups=speedups, blocked=blocked, names=names
    )


def run_table3(
    pairs: Optional[Sequence[Tuple[str, str]]] = None,
    target_requests: int = DEFAULT_TARGET_REQUESTS,
) -> List[HarvestBreakdown]:
    pairs = pairs if pairs is not None else expected.ALL_PAIRS
    return [run(w1, w2, target_requests) for w1, w2 in pairs]


def main() -> None:
    print("Fig. 23 / Table III: harvesting benefit and overhead")
    print(f"  {'pair':14s} {'W1 med speedup':>15s} {'W2 med':>8s} "
          f"{'W1 blocked':>11s} {'W2 blocked':>11s} {'paper W1/W2':>16s}")
    for (w1, w2) in expected.ALL_PAIRS:
        b = run(w1, w2)
        paper = expected.TABLE3_OVERHEAD[(w1, w2)]
        print(
            f"  {b.pair:14s} {b.median_speedup(0):15.2f} "
            f"{b.median_speedup(1):8.2f} "
            f"{b.blocked[0]*100:10.2f}% {b.blocked[1]*100:10.2f}% "
            f"{paper[0]*100:7.2f}/{paper[1]*100:.2f}%"
        )


def run_result(pairs=None, target_requests: int = DEFAULT_TARGET_REQUESTS):
    """Structured Fig. 23 / Table III metrics (see :mod:`repro.api`)."""
    from repro.api.result import figure_result

    pairs = [tuple(p) for p in pairs] if pairs is not None else None
    breakdowns = run_table3(pairs, target_requests)
    per_pair = {
        b.pair: {
            "median_speedup": [b.median_speedup(0), b.median_speedup(1)],
            "blocked_fraction": [b.blocked[0], b.blocked[1]],
            "tenants": [b.names[0], b.names[1]],
        }
        for b in breakdowns
    }
    return figure_result(
        "fig23", {"pairs": per_pair}, {"target_requests": target_requests}
    )


if __name__ == "__main__":
    main()
