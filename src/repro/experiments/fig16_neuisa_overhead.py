"""Fig. 16: performance overhead of NeuISA over the VLIW-style ISA.

Each workload runs solo on the full core, once compiled to NeuISA and
once to the traditional VLIW ISA; the overhead is the relative runtime
difference.  The paper reports <1% on average, with the worst cases at
small batch sizes where a matmul must be partitioned on the reduction
dimension (the VE combine step cannot pipeline with the MEs) -- and the
overhead shrinking as the batch grows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.config import DEFAULT_CORE, NpuCoreConfig
from repro.sim.engine import Simulator, Tenant
from repro.sim.sched_static import StaticPartitionScheduler
from repro.baselines.pmt import PmtScheduler
from repro.workloads.catalog import model_names
from repro.workloads.traces import build_trace

DEFAULT_BATCHES = [1, 8, 32]


@dataclass
class OverheadResult:
    #: model -> batch -> relative overhead (positive = NeuISA slower).
    overhead: Dict[str, Dict[int, float]]

    def average(self) -> float:
        values = [o for per in self.overhead.values() for o in per.values()]
        return sum(values) / len(values) if values else 0.0

    def maximum(self) -> float:
        values = [o for per in self.overhead.values() for o in per.values()]
        return max(values) if values else 0.0


def _solo_cycles(graph, core: NpuCoreConfig, scheduler) -> float:
    tenant = Tenant(
        tenant_id=0,
        name=graph.name,
        graph=graph,
        alloc_mes=core.num_mes,
        alloc_ves=core.num_ves,
        target_requests=1,
    )
    sim = Simulator(core, scheduler, [tenant], record_ops=False)
    result = sim.run()
    return result.tenant(0).mean_latency


def run(
    models: Optional[List[str]] = None,
    batches: Optional[List[int]] = None,
    core: NpuCoreConfig = DEFAULT_CORE,
) -> OverheadResult:
    models = models if models is not None else model_names()
    batches = batches if batches is not None else DEFAULT_BATCHES
    overhead: Dict[str, Dict[int, float]] = {}
    for model in models:
        overhead[model] = {}
        for batch in batches:
            trace = build_trace(model, batch, core=core)
            vliw_cycles = _solo_cycles(trace.vliw, core, PmtScheduler())
            neuisa_cycles = _solo_cycles(
                trace.neuisa, core, StaticPartitionScheduler()
            )
            overhead[model][batch] = (neuisa_cycles - vliw_cycles) / vliw_cycles
    return OverheadResult(overhead=overhead)


def main() -> None:
    result = run(batches=[1, 8, 32])
    print("Fig. 16: NeuISA overhead vs traditional VLIW ISA")
    print(f"  {'model':14s} {'b1':>8s} {'b8':>8s} {'b32':>8s}")
    for model, per_batch in result.overhead.items():
        cells = " ".join(
            f"{per_batch.get(b, float('nan'))*100:7.2f}%" for b in (1, 8, 32)
        )
        print(f"  {model:14s} {cells}")
    print(
        f"  average={result.average()*100:.2f}% (paper: <1%)  "
        f"max={result.maximum()*100:.2f}% (paper: ~6% worst case)"
    )


def run_result(models=None, batches=None):
    """Structured Fig. 16 metrics (see :mod:`repro.api`)."""
    from repro.api.result import figure_result

    batches = list(batches) if batches is not None else [1, 8, 32]
    result = run(models=models, batches=batches)
    overhead = {
        model: {str(batch): value for batch, value in per_batch.items()}
        for model, per_batch in result.overhead.items()
    }
    return figure_result(
        "fig16",
        {
            "overhead": overhead,
            "average": result.average(),
            "maximum": result.maximum(),
        },
        {"batches": batches},
    )


if __name__ == "__main__":
    main()
