"""Shared experiment infrastructure: pair runs, caching, formatting."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import DEFAULT_CORE, NpuCoreConfig
from repro.experiments import expected
from repro.parallel import parallel_map
from repro.serving.metrics import PairMetrics
from repro.serving.server import (
    ALL_SCHEMES,
    ServingConfig,
    WorkloadSpec,
    run_collocation,
)

#: Default request target for experiment runs; benchmarks shrink this.
DEFAULT_TARGET_REQUESTS = 4


@dataclass
class PairRun:
    """All schemes' results for one collocation pair."""

    w1: str
    w2: str
    results: Dict[str, PairMetrics] = field(default_factory=dict)

    @property
    def label(self) -> str:
        return expected.pair_key(self.w1, self.w2)

    def scheme(self, scheme: str) -> PairMetrics:
        return self.results[scheme]

    def tenant_metric(self, scheme: str, which: int, attr: str) -> float:
        metrics = self.results[scheme].tenants[which]
        return getattr(metrics, attr)

    def norm_latency(self, scheme: str, which: int, attr: str,
                     baseline: str = "pmt") -> float:
        """Latency normalised to the baseline scheme (paper Figs. 19/20):
        values < 1 mean lower (better) latency than the baseline."""
        base = self.tenant_metric(baseline, which, attr)
        val = self.tenant_metric(scheme, which, attr)
        return val / base if base > 0 else 0.0

    def norm_throughput(self, scheme: str, which: int,
                        baseline: str = "pmt") -> float:
        base = self.tenant_metric(baseline, which, "throughput_rps")
        val = self.tenant_metric(scheme, which, "throughput_rps")
        return val / base if base > 0 else 0.0


def specs_for_pair(
    w1: str, w2: str, core: NpuCoreConfig
) -> List[WorkloadSpec]:
    """Each workload runs on a vNPU with half the core (SectionV-A:
    'Each workload runs on a vNPU with 2 MEs and 2 VEs')."""
    half_mes = max(1, core.num_mes // 2)
    half_ves = max(1, core.num_ves // 2)
    return [
        WorkloadSpec(w1, expected.batch_of(w1), alloc_mes=half_mes, alloc_ves=half_ves),
        WorkloadSpec(w2, expected.batch_of(w2), alloc_mes=half_mes, alloc_ves=half_ves),
    ]


def run_pair(
    w1: str,
    w2: str,
    schemes: Sequence[str] = ALL_SCHEMES,
    target_requests: int = DEFAULT_TARGET_REQUESTS,
    core: Optional[NpuCoreConfig] = None,
    record_assignment: bool = False,
) -> PairRun:
    core = core if core is not None else DEFAULT_CORE
    cfg = ServingConfig(
        core=core,
        target_requests=target_requests,
        record_assignment=record_assignment,
    )
    run = PairRun(w1=w1, w2=w2)
    specs = specs_for_pair(w1, w2, core)
    for scheme in schemes:
        run.results[scheme] = run_collocation(specs, scheme, cfg)
    return run


_pair_cache: Dict[Tuple, PairRun] = {}


def _pair_cache_key(
    w1: str,
    w2: str,
    schemes: Sequence[str],
    target_requests: int,
    core: NpuCoreConfig,
) -> Tuple:
    """The single source of truth for pair-cache keys (run_pair_cached
    and run_all_pairs's fan-out pre-check must agree exactly)."""
    return (w1, w2, tuple(sorted(schemes)), target_requests, core)


def run_pair_cached(
    w1: str,
    w2: str,
    schemes: Sequence[str] = ALL_SCHEMES,
    target_requests: int = DEFAULT_TARGET_REQUESTS,
    core: Optional[NpuCoreConfig] = None,
) -> PairRun:
    """Memoised run_pair -- Figs. 19-23 and Table III share runs."""
    core = core if core is not None else DEFAULT_CORE
    key = _pair_cache_key(w1, w2, schemes, target_requests, core)
    cached = _pair_cache.get(key)
    if cached is not None:
        return cached
    run = run_pair(w1, w2, schemes, target_requests, core)
    _pair_cache[key] = run
    return run


def _run_pair_job(job: Tuple) -> PairRun:
    """Picklable worker for one collocation pair (all schemes)."""
    w1, w2, schemes, target_requests = job
    return run_pair(w1, w2, schemes, target_requests)


def run_all_pairs(
    schemes: Sequence[str] = ALL_SCHEMES,
    target_requests: int = DEFAULT_TARGET_REQUESTS,
    pairs: Optional[Sequence[Tuple[str, str]]] = None,
    max_workers: Optional[int] = None,
) -> List[PairRun]:
    """All collocation pairs, fanned out over a process pool.

    Each pair is an independent closed-loop simulation, so uncached
    pairs are dispatched through :func:`repro.parallel.parallel_map`
    (results identical for any worker count) and fed back into the
    shared pair cache that Figs. 19-23 and Table III draw from.
    """
    pairs = pairs if pairs is not None else expected.ALL_PAIRS
    key_schemes = tuple(schemes)
    missing = [
        (w1, w2)
        for w1, w2 in pairs
        if _pair_cache_key(w1, w2, key_schemes, target_requests, DEFAULT_CORE)
        not in _pair_cache
    ]
    if missing:
        fresh = parallel_map(
            _run_pair_job,
            [(w1, w2, key_schemes, target_requests) for w1, w2 in missing],
            max_workers=max_workers,
        )
        for (w1, w2), run in zip(missing, fresh):
            key = _pair_cache_key(
                w1, w2, key_schemes, target_requests, DEFAULT_CORE
            )
            _pair_cache[key] = run
    return [
        run_pair_cached(w1, w2, schemes, target_requests) for w1, w2 in pairs
    ]


def geomean(values: Sequence[float]) -> float:
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    product = 1.0
    for v in vals:
        product *= v
    return product ** (1.0 / len(vals))


def format_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
