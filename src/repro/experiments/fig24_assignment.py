"""Fig. 24: number of MEs/VEs assigned to each workload over time.

Runs a pair under Neu10 with assignment recording and returns the
per-tenant engine-assignment series.  The paper's observation: the
ME-intensive workload periodically harvests engines from the collocated
workload as demand ebbs, so assignments fluctuate between the home
allocation (2) and the full core (4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.config import DEFAULT_CORE
from repro.experiments import expected
from repro.experiments.common import DEFAULT_TARGET_REQUESTS, specs_for_pair
from repro.serving.server import SCHEME_NEU10, ServingConfig, make_scheduler
from repro.sim.engine import Simulator, Tenant
from repro.workloads.traces import build_trace

FIG24_PAIRS = [("DLRM", "RtNt"), ("ENet", "SMask"), ("RNRS", "RtNt")]


@dataclass
class AssignmentTrace:
    pair: str
    #: tenant name -> list of (start_us, end_us, assigned MEs, assigned VEs)
    series: Dict[str, List[Tuple[float, float, float, float]]]

    def me_range(self, name: str) -> Tuple[float, float]:
        values = [mes for _s, _e, mes, _v in self.series[name]]
        return (min(values), max(values)) if values else (0.0, 0.0)

    def harvested_fraction(self, name: str, home: float) -> float:
        """Fraction of time the workload ran with more than its home MEs."""
        total = above = 0.0
        for start, end, mes, _ves in self.series[name]:
            span = end - start
            total += span
            if mes > home + 1e-9:
                above += span
        return above / total if total > 0 else 0.0


def run(
    w1: str,
    w2: str,
    target_requests: int = DEFAULT_TARGET_REQUESTS,
) -> AssignmentTrace:
    core = DEFAULT_CORE
    cfg = ServingConfig(target_requests=target_requests, record_assignment=True)
    specs = specs_for_pair(w1, w2, core)
    tenants = []
    for idx, spec in enumerate(specs):
        trace = build_trace(spec.model, spec.batch, core=core)
        tenants.append(
            Tenant(
                tenant_id=idx,
                name=trace.abbrev,
                graph=trace.neuisa,
                alloc_mes=spec.alloc_mes or core.num_mes // 2,
                alloc_ves=spec.alloc_ves or core.num_ves // 2,
                target_requests=cfg.target_requests,
            )
        )
    sim = Simulator(
        core, make_scheduler(SCHEME_NEU10), tenants,
        record_assignment=True, record_ops=False,
    )
    result = sim.run()
    series: Dict[str, List[Tuple[float, float, float, float]]] = {}
    for tenant in tenants:
        raw = result.stats.assignment_series(tenant.tenant_id)
        series[tenant.name] = [
            (core.cycles_to_us(s), core.cycles_to_us(e), mes, ves)
            for s, e, mes, ves in raw
        ]
    return AssignmentTrace(pair=f"{tenants[0].name}+{tenants[1].name}", series=series)


def main() -> None:
    print("Fig. 24: assigned MEs/VEs over time under Neu10 (home = 2)")
    for w1, w2 in FIG24_PAIRS:
        trace = run(w1, w2)
        for name in trace.series:
            lo, hi = trace.me_range(name)
            frac = trace.harvested_fraction(name, home=2.0)
            print(
                f"  {trace.pair:12s} {name:6s} MEs range [{lo:.0f}, {hi:.0f}], "
                f"harvesting {frac*100:5.1f}% of the time"
            )


def run_result(pairs=None, target_requests: int = DEFAULT_TARGET_REQUESTS):
    """Structured Fig. 24 metrics (see :mod:`repro.api`)."""
    from repro.api.result import figure_result

    pairs = [tuple(p) for p in pairs] if pairs is not None else list(FIG24_PAIRS)
    per_pair = {}
    for w1, w2 in pairs:
        trace = run(w1, w2, target_requests)
        per_pair[trace.pair] = {
            name: {
                "me_range": list(trace.me_range(name)),
                "harvested_fraction": trace.harvested_fraction(name, home=2.0),
            }
            for name in trace.series
        }
    return figure_result(
        "fig24", {"pairs": per_pair}, {"target_requests": target_requests}
    )


if __name__ == "__main__":
    main()
