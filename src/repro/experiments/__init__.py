"""Experiment drivers: one module per paper table/figure.

Every driver exposes ``run(...)`` returning a result object plus a
``main()`` that prints the paper-vs-measured comparison.  Benchmarks in
``benchmarks/`` call the same drivers with reduced request targets, so
the numbers in CI and the numbers in EXPERIMENTS.md come from one code
path.

==========  ==========================================================
Driver      Paper artifact
==========  ==========================================================
fig02       Fig. 2/3  -- ME/VE demand over time per workload
fig04       Fig. 4    -- ME:VE intensity ratio vs batch size
fig05       Fig. 5    -- solo ME/VE utilization over time
fig06       Fig. 6    -- VE idleness in a fused MatMul+ReLU (VLIW)
fig07       Fig. 7    -- HBM bandwidth over time / averages
fig12       Fig. 12   -- vNPU allocator cost-effectiveness sweep
fig16       Fig. 16   -- NeuISA overhead vs the VLIW ISA
fig19_21    Figs. 19/20/21 + 22 -- the main serving comparison
fig23       Fig. 23 + Table III -- harvesting benefit/overhead
fig24       Fig. 24   -- assigned MEs/VEs over time
fig25       Fig. 25   -- scaling with ME/VE count
fig26       Fig. 26   -- scaling with HBM bandwidth
fig27       Fig. 27   -- LLM collocation case study
hwcost      SectionIII-G -- scheduler area overhead (0.04 %)
==========  ==========================================================
"""

from repro.experiments import common, expected

__all__ = ["common", "expected"]
