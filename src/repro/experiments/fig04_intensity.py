"""Fig. 4: ME/VE intensity ratio per workload and batch size.

The metric is "the execution time of ME / VE" from the compile-time
profile.  The paper's qualitative structure: ResNet-family and detection
models sit far above 1 (convolution dominated); DLRM and NCF sit below 1
(vector/gather dominated); EfficientNet is near 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.config import DEFAULT_CORE
from repro.workloads.catalog import model_names
from repro.workloads.traces import build_trace

FIG4_BATCHES = [1, 8, 32, 64, 128]
#: Models excluded at large batches for memory reasons in the paper; we
#: exclude the big detection models to bound experiment runtime.
LARGE_BATCH_EXCLUDED = {"Mask-RCNN", "ShapeMask"}


@dataclass
class IntensityResult:
    ratios: Dict[str, Dict[int, float]]

    def ratio(self, model: str, batch: int) -> float:
        return self.ratios[model][batch]

    def me_intensive(self, batch: int = 8) -> List[str]:
        return [m for m, r in self.ratios.items() if batch in r and r[batch] > 1.0]

    def ve_intensive(self, batch: int = 8) -> List[str]:
        return [m for m, r in self.ratios.items() if batch in r and r[batch] < 1.0]


def run(batches: List[int] = None, models: List[str] = None) -> IntensityResult:
    batches = batches if batches is not None else FIG4_BATCHES
    models = models if models is not None else model_names()
    ratios: Dict[str, Dict[int, float]] = {}
    for model in models:
        ratios[model] = {}
        for batch in batches:
            if model in LARGE_BATCH_EXCLUDED and batch > 8:
                continue
            trace = build_trace(model, batch, core=DEFAULT_CORE)
            ratios[model][batch] = trace.profile.me_ve_intensity_ratio
    return IntensityResult(ratios=ratios)


def main() -> None:
    result = run(batches=[8, 32])
    print("Fig. 4: ME/VE intensity ratio (execution time of ME / VE)")
    print(f"  {'model':14s} {'b8':>9s} {'b32':>9s}")
    for model, per_batch in result.ratios.items():
        b8 = per_batch.get(8)
        b32 = per_batch.get(32)
        print(
            f"  {model:14s} "
            f"{b8:9.3f}" if b8 is not None else f"  {model:14s} {'-':>9s}",
            f"{b32:9.3f}" if b32 is not None else f"{'-':>9s}",
        )
    print(f"  ME-intensive at b8: {result.me_intensive(8)}")
    print(f"  VE-intensive at b8: {result.ve_intensive(8)}")


def run_result(batches=None, models=None):
    """Structured Fig. 4 metrics (see :mod:`repro.api`)."""
    from repro.api.result import figure_result

    batches = list(batches) if batches is not None else [8, 32]
    result = run(batches=batches, models=models)
    ratios = {
        model: {str(batch): ratio for batch, ratio in per_batch.items()}
        for model, per_batch in result.ratios.items()
    }
    return figure_result(
        "fig04",
        {
            "ratios": ratios,
            "me_intensive": result.me_intensive(),
            "ve_intensive": result.ve_intensive(),
        },
        {"batches": batches},
    )


if __name__ == "__main__":
    main()
