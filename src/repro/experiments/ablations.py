"""Ablations of Neu10's design choices (DESIGN.md SectionVI).

Four knobs the paper fixes by design, varied here to quantify their
contribution:

1. **Harvesting** on/off -- isolates the benefit of dynamic uTOp
   scheduling over pure spatial partitioning (SectionIII-E).
2. **ME reclaim penalty** 0 / 256 / 2048 cycles -- sensitivity to the
   context-save cost the paper derives from the 128x128 array.
3. **HBM sharing policy** hierarchical (per-vNPU fair, the default) vs
   flat per-stream max-min -- hierarchical protects a memory-hungry
   tenant from a collocated tenant that multiplies its stream count by
   harvesting.
4. **VE priority** embedded-streams-first (paper) vs VE-uTOps-first --
   the paper prioritises embedded streams "so the occupied MEs are freed
   as soon as possible".
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.config import DEFAULT_CORE, NpuCoreConfig
from repro.experiments.common import specs_for_pair
from repro.serving.server import SCHEME_ISA, SCHEME_NEU10
from repro.sim.engine import SimResult, Simulator, Tenant
from repro.sim.sched_neu10 import Neu10Scheduler
from repro.workloads.traces import build_trace


@dataclass
class AblationPoint:
    label: str
    throughputs: Tuple[float, float]
    p95s: Tuple[float, float]
    me_utilization: float
    preemptions: int


def _run(
    w1: str,
    w2: str,
    scheduler: Neu10Scheduler,
    core: NpuCoreConfig,
    target_requests: int,
    hbm_policy: str = "hierarchical",
) -> SimResult:
    specs = specs_for_pair(w1, w2, core)
    tenants: List[Tenant] = []
    for idx, spec in enumerate(specs):
        trace = build_trace(spec.model, spec.batch, core=core)
        tenants.append(
            Tenant(
                tenant_id=idx,
                name=trace.abbrev,
                graph=trace.compiled(SCHEME_ISA[SCHEME_NEU10]),
                alloc_mes=spec.alloc_mes or core.num_mes // 2,
                alloc_ves=spec.alloc_ves or core.num_ves // 2,
                target_requests=target_requests,
            )
        )
    sim = Simulator(core, scheduler, tenants, record_ops=False,
                    hbm_policy=hbm_policy)
    return sim.run()


def _point(label: str, result: SimResult) -> AblationPoint:
    return AblationPoint(
        label=label,
        throughputs=(
            result.tenant(0).throughput_rps,
            result.tenant(1).throughput_rps,
        ),
        p95s=(result.tenant(0).p95_latency, result.tenant(1).p95_latency),
        me_utilization=result.stats.me_utilization(),
        preemptions=result.stats.preemption_count,
    )


def ablate_harvesting(
    w1: str = "DLRM", w2: str = "RtNt", target_requests: int = 3
) -> Dict[str, AblationPoint]:
    core = DEFAULT_CORE
    return {
        "harvest-on": _point(
            "harvest-on",
            _run(w1, w2, Neu10Scheduler(harvesting=True), core, target_requests),
        ),
        "harvest-off": _point(
            "harvest-off",
            _run(w1, w2, Neu10Scheduler(harvesting=False), core, target_requests),
        ),
    }


def ablate_reclaim_penalty(
    w1: str = "DLRM",
    w2: str = "RtNt",
    penalties: Tuple[int, ...] = (0, 256, 2048),
    target_requests: int = 3,
) -> Dict[int, AblationPoint]:
    out: Dict[int, AblationPoint] = {}
    for penalty in penalties:
        core = dataclasses.replace(DEFAULT_CORE, me_preemption_cycles=penalty)
        result = _run(w1, w2, Neu10Scheduler(), core, target_requests)
        out[penalty] = _point(f"penalty={penalty}", result)
    return out


def ablate_hbm_policy(
    w1: str = "DLRM", w2: str = "RtNt", target_requests: int = 3
) -> Dict[str, AblationPoint]:
    core = DEFAULT_CORE
    return {
        policy: _point(
            policy,
            _run(w1, w2, Neu10Scheduler(), core, target_requests,
                 hbm_policy=policy),
        )
        for policy in ("hierarchical", "flat")
    }


def ablate_ve_priority(
    w1: str = "DLRM", w2: str = "RtNt", target_requests: int = 3
) -> Dict[str, AblationPoint]:
    core = DEFAULT_CORE
    return {
        "embedded-first": _point(
            "embedded-first",
            _run(w1, w2, Neu10Scheduler(ve_embedded_first=True), core,
                 target_requests),
        ),
        "ve-utops-first": _point(
            "ve-utops-first",
            _run(w1, w2, Neu10Scheduler(ve_embedded_first=False), core,
                 target_requests),
        ),
    }


def main() -> None:
    print("Ablations (DLRM+RtNt):")
    for name, points in (
        ("harvesting", ablate_harvesting()),
        ("reclaim penalty", ablate_reclaim_penalty()),
        ("hbm policy", ablate_hbm_policy()),
        ("ve priority", ablate_ve_priority()),
    ):
        print(f"  {name}:")
        for key, p in points.items():
            print(
                f"    {str(key):16s} thr {p.throughputs[0]:9.1f}/"
                f"{p.throughputs[1]:7.1f} rps  ME util "
                f"{p.me_utilization*100:4.1f}%  preempt {p.preemptions}"
            )


def run_result(w1: str = "DLRM", w2: str = "RtNt", target_requests: int = 3):
    """Structured ablation metrics (see :mod:`repro.api`)."""
    from repro.api.result import figure_result

    sections = {
        "harvesting": ablate_harvesting(w1, w2, target_requests),
        "reclaim_penalty": ablate_reclaim_penalty(
            w1, w2, target_requests=target_requests
        ),
        "hbm_policy": ablate_hbm_policy(w1, w2, target_requests),
        "ve_priority": ablate_ve_priority(w1, w2, target_requests),
    }
    metrics = {
        section: {
            str(key): {
                "throughputs_rps": list(p.throughputs),
                "p95_latency_cycles": list(p.p95s),
                "me_utilization": p.me_utilization,
                "preemptions": p.preemptions,
            }
            for key, p in points.items()
        }
        for section, points in sections.items()
    }
    return figure_result(
        "ablations", metrics,
        {"pair": f"{w1}+{w2}", "target_requests": target_requests},
    )


if __name__ == "__main__":
    main()
