"""Fig. 26: Neu10's benefit across HBM bandwidth configurations.

Throughput of Neu10 normalised to V10 at the same bandwidth, swept from
900 GB/s to 3 TB/s.  The paper's claims: (1) for most pairs the gain is
bandwidth-insensitive (ME/VE contention dominates, not memory); (2) for
memory-intensive pairs (DLRM+NCF, NCF+TFMR) Neu10 still wins at
900 GB/s and gains more as bandwidth grows (contention relief).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import DEFAULT_CORE
from repro.experiments import expected
from repro.experiments.common import DEFAULT_TARGET_REQUESTS, geomean, specs_for_pair
from repro.serving.server import (
    SCHEME_NEU10,
    SCHEME_V10,
    ServingConfig,
    run_collocation,
)

FIG26_BANDWIDTHS_GBPS = [900, 1200, 2000, 3000]
MEMORY_INTENSIVE_PAIRS = [("DLRM", "NCF"), ("NCF", "TFMR")]


@dataclass
class BandwidthResult:
    pair: str
    #: bandwidth (GB/s) -> Neu10 throughput normalised to V10.
    speedup: Dict[int, float]

    def is_monotone_nondecreasing(self, tolerance: float = 0.05) -> bool:
        values = [self.speedup[bw] for bw in sorted(self.speedup)]
        return all(b >= a - tolerance for a, b in zip(values, values[1:]))


def run(
    w1: str,
    w2: str,
    bandwidths_gbps: Optional[Sequence[int]] = None,
    target_requests: int = DEFAULT_TARGET_REQUESTS,
) -> BandwidthResult:
    bandwidths = list(bandwidths_gbps) if bandwidths_gbps is not None else FIG26_BANDWIDTHS_GBPS
    speedup: Dict[int, float] = {}
    for bw in bandwidths:
        core = DEFAULT_CORE.with_bandwidth(bw * 1e9)
        cfg = ServingConfig(core=core, target_requests=target_requests)
        specs = specs_for_pair(w1, w2, core)
        ratios: List[float] = []
        v10 = run_collocation(specs, SCHEME_V10, cfg)
        neu = run_collocation(specs, SCHEME_NEU10, cfg)
        for t_v10, t_neu in zip(v10.tenants, neu.tenants):
            if t_v10.throughput_rps > 0:
                ratios.append(t_neu.throughput_rps / t_v10.throughput_rps)
        speedup[bw] = geomean(ratios)
    return BandwidthResult(pair=expected.pair_key(w1, w2), speedup=speedup)


def main() -> None:
    print("Fig. 26: Neu10 throughput normalized to V10 vs HBM bandwidth")
    pairs = MEMORY_INTENSIVE_PAIRS + [("DLRM", "RtNt"), ("ENet", "TFMR")]
    for w1, w2 in pairs:
        result = run(w1, w2, bandwidths_gbps=[900, 1200, 3000])
        cells = "  ".join(
            f"{bw}GB/s: {result.speedup[bw]:.2f}x" for bw in sorted(result.speedup)
        )
        print(f"  {result.pair:12s} {cells}")


def run_result(
    pairs=None,
    bandwidths_gbps=None,
    target_requests: int = DEFAULT_TARGET_REQUESTS,
):
    """Structured Fig. 26 metrics (see :mod:`repro.api`)."""
    from repro.api.result import figure_result

    pairs = (
        [tuple(p) for p in pairs]
        if pairs is not None
        else MEMORY_INTENSIVE_PAIRS + [("DLRM", "RtNt"), ("ENet", "TFMR")]
    )
    bandwidths = (
        list(bandwidths_gbps) if bandwidths_gbps is not None else [900, 1200, 3000]
    )
    per_pair = {}
    for w1, w2 in pairs:
        result = run(w1, w2, bandwidths_gbps=bandwidths,
                     target_requests=target_requests)
        per_pair[result.pair] = {
            str(bw): result.speedup[bw] for bw in sorted(result.speedup)
        }
    return figure_result(
        "fig26", {"pairs": per_pair}, {"bandwidths_gbps": bandwidths}
    )


if __name__ == "__main__":
    main()
