"""Fig. 12: cost-effectiveness of the vNPU allocator.

For each EU budget the experiment simulates *every* (MEs, VEs) split of
a model running solo, normalises throughput to the (1, 1) configuration,
and marks the split the Eq.-4 allocator selects.  The paper's claim: the
selected configuration is (near-)optimal for the same EU count -- "in
most cases, our algorithm selects a configuration with better
performance than others for the same number of EUs.  Though a
sub-optimal configuration may be selected, it still achieves similar
performance as the optimal one."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.config import DEFAULT_CORE, NpuCoreConfig
from repro.core.allocator import split_eu_budget
from repro.sim.engine import Simulator, Tenant
from repro.sim.sched_static import StaticPartitionScheduler
from repro.workloads.traces import build_trace

FIG12_MODELS = ["BERT", "RsNt", "ENet", "SMask"]
#: Fig. 12 scales "from 1 ME and 1 VE to 8 MEs and 8 VEs".
FIG12_CORE = DEFAULT_CORE.with_engines(8, 8)
DEFAULT_BUDGETS = [4, 6, 8, 12, 16]


@dataclass
class BudgetPoint:
    total_eus: int
    selected: Tuple[int, int]
    selected_throughput: float
    best: Tuple[int, int]
    best_throughput: float
    all_configs: Dict[Tuple[int, int], float] = field(default_factory=dict)

    @property
    def efficiency(self) -> float:
        """Selected throughput / best throughput (1.0 = optimal pick)."""
        if self.best_throughput <= 0:
            return 0.0
        return self.selected_throughput / self.best_throughput


@dataclass
class AllocatorSweep:
    model: str
    batch: int
    points: List[BudgetPoint]

    def worst_efficiency(self) -> float:
        return min((p.efficiency for p in self.points), default=0.0)


def _solo_throughput(
    model: str, batch: int, nm: int, nv: int, core: NpuCoreConfig,
    requests: int,
) -> float:
    trace = build_trace(model, batch, core=core)
    tenant = Tenant(
        tenant_id=0,
        name=trace.abbrev,
        graph=trace.neuisa,
        alloc_mes=nm,
        alloc_ves=nv,
        target_requests=requests,
    )
    sim = Simulator(core, StaticPartitionScheduler(), [tenant], record_ops=False)
    result = sim.run()
    return result.tenant(0).throughput_rps


def run(
    model: str,
    batch: int = 32,
    budgets: Optional[List[int]] = None,
    core: NpuCoreConfig = FIG12_CORE,
    requests: int = 1,
) -> AllocatorSweep:
    budgets = budgets if budgets is not None else DEFAULT_BUDGETS
    trace = build_trace(model, batch, core=core)
    profile = trace.profile
    points: List[BudgetPoint] = []
    for total in budgets:
        configs: Dict[Tuple[int, int], float] = {}
        for nm in range(1, total):
            nv = total - nm
            if nm > core.num_mes or nv > core.num_ves:
                continue
            configs[(nm, nv)] = _solo_throughput(
                model, batch, nm, nv, core, requests
            )
        if not configs:
            continue
        selected = split_eu_budget(profile.m, profile.v, total)
        selected = (
            min(selected[0], core.num_mes),
            min(total - min(selected[0], core.num_mes), core.num_ves),
        )
        if selected not in configs:
            selected = min(configs, key=lambda c: abs(c[0] - selected[0]))
        best = max(configs, key=lambda c: configs[c])
        points.append(
            BudgetPoint(
                total_eus=total,
                selected=selected,
                selected_throughput=configs[selected],
                best=best,
                best_throughput=configs[best],
                all_configs=configs,
            )
        )
    return AllocatorSweep(model=trace.abbrev, batch=batch, points=points)


def main() -> None:
    print("Fig. 12: allocator-selected configs vs all configs (8ME/8VE core)")
    for model in FIG12_MODELS:
        batch = 8 if model == "SMask" else 32
        sweep = run(model, batch=batch, budgets=[4, 8, 12])
        print(f"  {sweep.model} (batch {batch}):")
        for p in sweep.points:
            print(
                f"    EUs={p.total_eus:2d} selected={p.selected} "
                f"best={p.best} efficiency={p.efficiency*100:5.1f}%"
            )


def run_result(models=None, budgets=None):
    """Structured Fig. 12 metrics (see :mod:`repro.api`)."""
    from repro.api.result import figure_result

    models = list(models) if models is not None else list(FIG12_MODELS)
    budgets = list(budgets) if budgets is not None else [4, 8, 12]
    per_model = {}
    for model in models:
        batch = 8 if model == "SMask" else 32
        sweep = run(model, batch=batch, budgets=budgets)
        per_model[sweep.model] = {
            "batch": batch,
            "points": [
                {
                    "total_eus": p.total_eus,
                    "selected": list(p.selected),
                    "best": list(p.best),
                    "efficiency": p.efficiency,
                }
                for p in sweep.points
            ],
        }
    return figure_result(
        "fig12", {"models": per_model}, {"budgets": budgets}
    )


if __name__ == "__main__":
    main()
