"""Paper-reported numbers for paper-vs-measured comparisons.

Values come from the evaluation text of the paper (exact bar heights are
not published); shape targets are the claims the reproduction is held
to.  Field names say which direction is better.
"""

from __future__ import annotations

from dataclasses import dataclass

#: The nine collocation pairs of SectionV-A, grouped by ME/VE contention.
LOW_CONTENTION_PAIRS = [("DLRM", "SMask"), ("DLRM", "RtNt"), ("NCF", "RsNt")]
MEDIUM_CONTENTION_PAIRS = [("ENet", "SMask"), ("BERT", "ENet"), ("ENet", "MRCNN")]
HIGH_CONTENTION_PAIRS = [("ENet", "TFMR"), ("MNIST", "RtNt"), ("RNRS", "RtNt")]
ALL_PAIRS = LOW_CONTENTION_PAIRS + MEDIUM_CONTENTION_PAIRS + HIGH_CONTENTION_PAIRS

#: Batch sizes: 32 except Mask-RCNN and ShapeMask (8).
BATCH_OVERRIDES = {"MRCNN": 8, "SMask": 8, "LLaMA": 8}
DEFAULT_BATCH = 32


@dataclass(frozen=True)
class HeadlineClaims:
    """The paper's headline evaluation claims."""

    # SectionV-B
    tail_latency_vs_v10_max: float = 4.6       # up to 4.6x lower p95
    tail_latency_vs_v10_avg: float = 1.56      # 1.56x on average
    avg_latency_vs_pmt: float = 1.33           # 1.33x lower mean latency
    avg_latency_vs_v10: float = 1.12
    throughput_vs_pmt_low_contention_v10: float = 1.58
    throughput_vs_pmt_low_contention_neu10: float = 1.62
    throughput_vs_v10_high_contention_max: float = 1.41
    # SectionV-C
    me_utilization_vs_pmt: float = 1.26
    ve_utilization_vs_pmt: float = 1.20
    # SectionIII-D
    neuisa_overhead_avg: float = 0.01          # <1 % on average
    neuisa_overhead_max: float = 0.06          # worst bar in Fig. 16
    # SectionV-D
    harvest_overhead_avg: float = 0.0312       # 3.12 % on average
    harvest_overhead_max: float = 0.1063       # MNIST in Table III
    # SectionV-F
    llm_harvest_throughput_gain: float = 1.6   # up to 1.6x (Fig. 27)
    # SectionIII-G
    scheduler_area_fraction: float = 0.0004    # 0.04 % of a TPUv4 die


CLAIMS = HeadlineClaims()

#: Table III: harvesting overhead (blocked-time fraction) per pair,
#: (W1 overhead, W2 overhead).
TABLE3_OVERHEAD = {
    ("DLRM", "SMask"): (0.0247, 0.0001),
    ("DLRM", "RtNt"): (0.0254, 0.0001),
    ("NCF", "RsNt"): (0.0616, 0.0001),
    ("ENet", "SMask"): (0.0531, 0.0112),
    ("BERT", "ENet"): (0.0001, 0.0554),
    ("ENet", "MRCNN"): (0.0517, 0.0100),
    ("ENet", "TFMR"): (0.0561, 0.0015),
    ("MNIST", "RtNt"): (0.1063, 0.0174),
    ("RNRS", "RtNt"): (0.0733, 0.0221),
}

#: Fig. 7: average HBM bandwidth (GB/s) the paper measured.
FIG7_AVG_BANDWIDTH_GBPS = {
    ("BERT", 8): 347.59,
    ("BERT", 32): 176.24,
    ("DLRM", 8): 498.15,
    ("DLRM", 32): 494.37,
}

#: Fig. 12: the allocator-selected (MEs, VEs) labels shown in the paper
#: for each EU budget (representative subset).
FIG12_SELECTED = {
    "BERT": {4: (3, 1), 8: (6, 2), 12: (8, 3)},     # strongly ME-leaning
    "RsNt": {4: (3, 1), 8: (5, 3), 12: (7, 4)},     # ME-leaning
    "ENet": {4: (2, 2), 8: (4, 4), 12: (6, 6)},     # balanced
    "SMask": {4: (3, 1), 8: (6, 2), 12: (8, 4)},    # ME-leaning
}


def pair_key(w1: str, w2: str) -> str:
    return f"{w1}+{w2}"


def batch_of(abbrev: str) -> int:
    return BATCH_OVERRIDES.get(abbrev, DEFAULT_BATCH)
