"""Figs. 19-22: the main multi-tenant serving comparison.

Nine collocation pairs x four schemes (PMT, V10, Neu10-NH, Neu10):

- Fig. 19: 95th-percentile tail latency, normalised to PMT;
- Fig. 20: average request latency, normalised to PMT;
- Fig. 21: throughput, normalised to PMT;
- Fig. 22: total ME and VE utilization of the NPU core.

Headline claims validated against :mod:`repro.experiments.expected`:
Neu10 cuts tail latency vs V10 (up to 4.6x in the paper), improves mean
latency over PMT/V10, and lifts throughput most where ME/VE contention
is low (overlapping ME-intensive with VE-intensive work).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments import expected
from repro.experiments.common import (
    DEFAULT_TARGET_REQUESTS,
    PairRun,
    format_table,
    geomean,
    run_all_pairs,
)
from repro.serving.server import ALL_SCHEMES


@dataclass
class ServingComparison:
    runs: List[PairRun]

    # ------------------------------------------------------------------
    # Fig. 19 / 20: latency normalised to PMT
    # ------------------------------------------------------------------
    def latency_rows(self, attr: str) -> List[Tuple[str, Dict[str, List[float]]]]:
        rows = []
        for run in self.runs:
            per_scheme: Dict[str, List[float]] = {}
            for scheme in run.results:
                per_scheme[scheme] = [
                    run.norm_latency(scheme, 0, attr),
                    run.norm_latency(scheme, 1, attr),
                ]
            rows.append((run.label, per_scheme))
        return rows

    # ------------------------------------------------------------------
    # Fig. 21: throughput normalised to PMT
    # ------------------------------------------------------------------
    def throughput_rows(self) -> List[Tuple[str, Dict[str, List[float]]]]:
        rows = []
        for run in self.runs:
            per_scheme = {
                scheme: [
                    run.norm_throughput(scheme, 0),
                    run.norm_throughput(scheme, 1),
                ]
                for scheme in run.results
            }
            rows.append((run.label, per_scheme))
        return rows

    # ------------------------------------------------------------------
    # Fig. 22: utilization
    # ------------------------------------------------------------------
    def utilization_rows(self) -> List[Tuple[str, Dict[str, Tuple[float, float]]]]:
        rows = []
        for run in self.runs:
            per_scheme = {
                scheme: (
                    run.results[scheme].total_me_utilization,
                    run.results[scheme].total_ve_utilization,
                )
                for scheme in run.results
            }
            rows.append((run.label, per_scheme))
        return rows

    # ------------------------------------------------------------------
    # Headline aggregates
    # ------------------------------------------------------------------
    def tail_gain_vs_v10(self) -> Tuple[float, float]:
        """(max, geomean) of V10 p95 / Neu10 p95 across workloads."""
        gains: List[float] = []
        for run in self.runs:
            for which in (0, 1):
                v10 = run.tenant_metric("v10", which, "p95_latency_cycles")
                neu = run.tenant_metric("neu10", which, "p95_latency_cycles")
                if neu > 0:
                    gains.append(v10 / neu)
        return (max(gains), geomean(gains)) if gains else (0.0, 0.0)

    def mean_latency_gain(self, baseline: str) -> float:
        gains: List[float] = []
        for run in self.runs:
            for which in (0, 1):
                base = run.tenant_metric(baseline, which, "mean_latency_cycles")
                neu = run.tenant_metric("neu10", which, "mean_latency_cycles")
                if neu > 0:
                    gains.append(base / neu)
        return geomean(gains)

    def throughput_gain_low_contention(self, scheme: str) -> float:
        labels = {expected.pair_key(a, b) for a, b in expected.LOW_CONTENTION_PAIRS}
        gains: List[float] = []
        for run in self.runs:
            if run.label not in labels:
                continue
            for which in (0, 1):
                gains.append(run.norm_throughput(scheme, which))
        return geomean(gains)

    def throughput_gain_vs_v10_max(self) -> float:
        gains: List[float] = []
        for run in self.runs:
            for which in (0, 1):
                v10 = run.tenant_metric("v10", which, "throughput_rps")
                neu = run.tenant_metric("neu10", which, "throughput_rps")
                if v10 > 0:
                    gains.append(neu / v10)
        return max(gains) if gains else 0.0

    def utilization_gain_vs_pmt(self) -> Tuple[float, float]:
        me_gains, ve_gains = [], []
        for run in self.runs:
            pmt = run.results["pmt"]
            neu = run.results["neu10"]
            if pmt.total_me_utilization > 0:
                me_gains.append(neu.total_me_utilization / pmt.total_me_utilization)
            if pmt.total_ve_utilization > 0:
                ve_gains.append(neu.total_ve_utilization / pmt.total_ve_utilization)
        return geomean(me_gains), geomean(ve_gains)


def run(
    target_requests: int = DEFAULT_TARGET_REQUESTS,
    pairs: Optional[Sequence[Tuple[str, str]]] = None,
    schemes: Sequence[str] = ALL_SCHEMES,
) -> ServingComparison:
    return ServingComparison(
        runs=run_all_pairs(schemes, target_requests, pairs)
    )


def main() -> None:
    comparison = run()
    claims = expected.CLAIMS

    headers = ["pair"] + [
        f"{s}:{w}" for s in ALL_SCHEMES for w in ("W1", "W2")
    ]
    for title, attr in (
        ("Fig. 19: normalized p95 tail latency (PMT = 1.0)", "p95_latency_cycles"),
        ("Fig. 20: normalized average latency (PMT = 1.0)", "mean_latency_cycles"),
    ):
        rows = []
        for label, per_scheme in comparison.latency_rows(attr):
            cells = [label]
            for scheme in ALL_SCHEMES:
                cells.extend(f"{v:.2f}" for v in per_scheme[scheme])
            rows.append(cells)
        print(title)
        print(format_table(headers, rows))
        print()

    rows = []
    for label, per_scheme in comparison.throughput_rows():
        cells = [label]
        for scheme in ALL_SCHEMES:
            cells.extend(f"{v:.2f}" for v in per_scheme[scheme])
        rows.append(cells)
    print("Fig. 21: normalized throughput (PMT = 1.0)")
    print(format_table(headers, rows))
    print()

    tail_max, tail_geo = comparison.tail_gain_vs_v10()
    me_gain, ve_gain = comparison.utilization_gain_vs_pmt()
    print("Headline paper-vs-measured:")
    print(
        f"  tail latency gain vs V10:  measured max {tail_max:.2f}x / "
        f"avg {tail_geo:.2f}x   (paper: up to {claims.tail_latency_vs_v10_max}x, "
        f"avg {claims.tail_latency_vs_v10_avg}x)"
    )
    print(
        f"  mean latency gain vs PMT:  {comparison.mean_latency_gain('pmt'):.2f}x "
        f"(paper {claims.avg_latency_vs_pmt}x); vs V10: "
        f"{comparison.mean_latency_gain('v10'):.2f}x (paper {claims.avg_latency_vs_v10}x)"
    )
    print(
        f"  low-contention throughput vs PMT: neu10 "
        f"{comparison.throughput_gain_low_contention('neu10'):.2f}x "
        f"(paper {claims.throughput_vs_pmt_low_contention_neu10}x), v10 "
        f"{comparison.throughput_gain_low_contention('v10'):.2f}x "
        f"(paper {claims.throughput_vs_pmt_low_contention_v10}x)"
    )
    print(
        f"  max throughput gain vs V10: {comparison.throughput_gain_vs_v10_max():.2f}x "
        f"(paper up to {claims.throughput_vs_v10_high_contention_max}x)"
    )
    print(
        f"  Fig. 22 utilization vs PMT: ME {me_gain:.2f}x (paper "
        f"{claims.me_utilization_vs_pmt}x), VE {ve_gain:.2f}x (paper "
        f"{claims.ve_utilization_vs_pmt}x)"
    )


def run_result(
    target_requests: int = DEFAULT_TARGET_REQUESTS,
    pairs=None,
    schemes=None,
):
    """Structured Figs. 19-22 metrics (see :mod:`repro.api`)."""
    from repro.api.result import figure_result

    pairs = [tuple(p) for p in pairs] if pairs is not None else None
    schemes = tuple(schemes) if schemes is not None else ALL_SCHEMES
    comparison = run(target_requests, pairs, schemes)
    per_pair = {}
    for pair_run in comparison.runs:
        per_pair[pair_run.label] = {
            scheme: {
                "norm_p95": [
                    pair_run.norm_latency(scheme, w, "p95_latency_cycles")
                    for w in (0, 1)
                ],
                "norm_mean": [
                    pair_run.norm_latency(scheme, w, "mean_latency_cycles")
                    for w in (0, 1)
                ],
                "norm_throughput": [
                    pair_run.norm_throughput(scheme, w) for w in (0, 1)
                ],
                "total_me_utilization":
                    pair_run.results[scheme].total_me_utilization,
                "total_ve_utilization":
                    pair_run.results[scheme].total_ve_utilization,
            }
            for scheme in pair_run.results
        }
    tail_max, tail_geo = comparison.tail_gain_vs_v10()
    me_gain, ve_gain = comparison.utilization_gain_vs_pmt()
    metrics = {
        "pairs": per_pair,
        "tail_latency_gain_vs_v10_max": tail_max,
        "tail_latency_gain_vs_v10_geomean": tail_geo,
        "mean_latency_gain_vs_pmt": comparison.mean_latency_gain("pmt"),
        "mean_latency_gain_vs_v10": comparison.mean_latency_gain("v10"),
        "throughput_gain_low_contention_neu10":
            comparison.throughput_gain_low_contention("neu10"),
        "throughput_gain_vs_v10_max":
            comparison.throughput_gain_vs_v10_max(),
        "me_utilization_gain_vs_pmt": me_gain,
        "ve_utilization_gain_vs_pmt": ve_gain,
    }
    return figure_result(
        "fig19",
        metrics,
        {"target_requests": target_requests, "schemes": list(schemes)},
    )


if __name__ == "__main__":
    main()
