"""Fig. 25: Neu10's benefit as the engine count scales.

The physical core is varied from 2ME-2VE to 8ME-8VE (evenly split
between the two collocated vNPUs); throughput is normalised to V10 on
the 2ME-2VE core.  The paper's claim: "With more MEs/VEs, Neu10 brings
more benefits, since there is more flexibility for dynamic ME/VE
scheduling" -- the Neu10:V10 gap widens with engine count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import DEFAULT_CORE
from repro.experiments import expected
from repro.experiments.common import DEFAULT_TARGET_REQUESTS, geomean, specs_for_pair
from repro.serving.server import (
    SCHEME_NEU10,
    SCHEME_V10,
    ServingConfig,
    run_collocation,
)

FIG25_CONFIGS = [(2, 2), (4, 2), (4, 4), (8, 4), (8, 8)]


@dataclass
class ScalingResult:
    pair: str
    #: (mes, ves) -> {scheme: geomean normalized throughput}
    points: Dict[Tuple[int, int], Dict[str, float]]

    def gap(self, config: Tuple[int, int]) -> float:
        """Neu10 / V10 throughput ratio at one hardware config."""
        point = self.points[config]
        if point[SCHEME_V10] <= 0:
            return 0.0
        return point[SCHEME_NEU10] / point[SCHEME_V10]


def run(
    w1: str,
    w2: str,
    configs: Optional[Sequence[Tuple[int, int]]] = None,
    target_requests: int = DEFAULT_TARGET_REQUESTS,
) -> ScalingResult:
    configs = list(configs) if configs is not None else FIG25_CONFIGS
    raw: Dict[Tuple[int, int], Dict[str, List[float]]] = {}
    for mes, ves in configs:
        core = DEFAULT_CORE.with_engines(mes, ves)
        cfg = ServingConfig(core=core, target_requests=target_requests)
        specs = specs_for_pair(w1, w2, core)
        raw[(mes, ves)] = {}
        for scheme in (SCHEME_V10, SCHEME_NEU10):
            pair = run_collocation(specs, scheme, cfg)
            raw[(mes, ves)][scheme] = [
                t.throughput_rps for t in pair.tenants
            ]
    base = raw[configs[0]][SCHEME_V10]
    points: Dict[Tuple[int, int], Dict[str, float]] = {}
    for config, per_scheme in raw.items():
        points[config] = {}
        for scheme, throughputs in per_scheme.items():
            normalized = [
                t / b if b > 0 else 0.0 for t, b in zip(throughputs, base)
            ]
            points[config][scheme] = geomean(normalized)
    return ScalingResult(pair=expected.pair_key(w1, w2), points=points)


def main() -> None:
    print("Fig. 25: throughput scaling with ME/VE count "
          "(normalized to V10 @ 2ME-2VE)")
    for w1, w2 in [("DLRM", "RtNt"), ("ENet", "TFMR"), ("RNRS", "RtNt")]:
        result = run(w1, w2, configs=[(2, 2), (4, 4), (8, 8)])
        cells = "  ".join(
            f"{cfg[0]}ME-{cfg[1]}VE: neu10={pt[SCHEME_NEU10]:.2f} "
            f"v10={pt[SCHEME_V10]:.2f} gap={result.gap(cfg):.2f}x"
            for cfg, pt in result.points.items()
        )
        print(f"  {result.pair:12s} {cells}")


def run_result(
    pairs=None, configs=None, target_requests: int = DEFAULT_TARGET_REQUESTS
):
    """Structured Fig. 25 metrics (see :mod:`repro.api`)."""
    from repro.api.result import figure_result

    pairs = (
        [tuple(p) for p in pairs]
        if pairs is not None
        else [("DLRM", "RtNt"), ("ENet", "TFMR"), ("RNRS", "RtNt")]
    )
    configs = (
        [tuple(c) for c in configs] if configs is not None else [(2, 2), (4, 4), (8, 8)]
    )
    per_pair = {}
    for w1, w2 in pairs:
        result = run(w1, w2, configs=configs, target_requests=target_requests)
        per_pair[result.pair] = {
            f"{mes}ME-{ves}VE": {
                "normalized_throughput": dict(point),
                "gap": result.gap((mes, ves)),
            }
            for (mes, ves), point in result.points.items()
        }
    return figure_result(
        "fig25",
        {"pairs": per_pair},
        {
            "configs": [list(c) for c in configs],
            "target_requests": target_requests,
        },
    )


if __name__ == "__main__":
    main()
