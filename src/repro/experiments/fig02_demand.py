"""Fig. 2/3: ME/VE demand of DNN workloads over time.

For each operator the compiler picks the engine counts that maximise
efficiency given the tensor shapes; plotting those counts over the
request timeline gives the paper's demand traces.  The figure uses the
real TPUv4 study geometry (4 MEs, 2 VEs per core).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.compiler.cost_model import CostModel
from repro.compiler.tiling import compiler_demanded_engines
from repro.config import DEFAULT_CORE, NpuCoreConfig
from repro.workloads.catalog import model_info

#: Fig. 2's hardware: a real TPUv4 core with 4 MEs and 2 VEs.
FIG2_MAX_MES = 4
FIG2_MAX_VES = 2

FIG2_MODELS = ["BERT", "TFMR", "DLRM", "NCF", "RsNt", "MRCNN"]
FIG3_MODELS = ["BERT", "DLRM"]


@dataclass
class DemandPoint:
    start_us: float
    end_us: float
    op_name: str
    demanded_mes: int
    demanded_ves: int


@dataclass
class DemandTrace:
    model: str
    batch: int
    points: List[DemandPoint]

    @property
    def duration_us(self) -> float:
        return self.points[-1].end_us if self.points else 0.0

    def demand_variance(self) -> Tuple[int, int]:
        """(distinct ME demands, distinct VE demands) -- the paper's
        point is that demand *varies* over time."""
        mes = {p.demanded_mes for p in self.points}
        ves = {p.demanded_ves for p in self.points}
        return len(mes), len(ves)

    def time_weighted_average(self) -> Tuple[float, float]:
        total = self.duration_us
        if total <= 0:
            return 0.0, 0.0
        me = sum((p.end_us - p.start_us) * p.demanded_mes for p in self.points)
        ve = sum((p.end_us - p.start_us) * p.demanded_ves for p in self.points)
        return me / total, ve / total


def run(model: str, batch: int = 8, core: NpuCoreConfig = DEFAULT_CORE) -> DemandTrace:
    info = model_info(model)
    graph = info.build(batch)
    cost_model = CostModel(core)
    points: List[DemandPoint] = []
    t = 0.0
    for node in graph.topo_order():
        cost = cost_model.cost(node.op)
        mes, ves = compiler_demanded_engines(cost, FIG2_MAX_MES, FIG2_MAX_VES)
        duration = max(cost.me_cycles, cost.ve_cycles, 1.0)
        duration_us = core.cycles_to_us(duration)
        points.append(
            DemandPoint(
                start_us=t,
                end_us=t + duration_us,
                op_name=node.name,
                demanded_mes=mes,
                demanded_ves=ves,
            )
        )
        t += duration_us
    return DemandTrace(model=info.abbrev, batch=batch, points=points)


def main() -> None:
    print("Fig. 2: ME/VE demand over time (batch 8); Fig. 3: batch 32")
    for model in FIG2_MODELS:
        trace = run(model, batch=8)
        me_avg, ve_avg = trace.time_weighted_average()
        n_me, n_ve = trace.demand_variance()
        print(
            f"  {trace.model:6s} b8  duration={trace.duration_us:10.1f}us "
            f"avg demand {me_avg:.2f} MEs / {ve_avg:.2f} VEs "
            f"({n_me} distinct ME levels, {n_ve} VE levels)"
        )
    for model in FIG3_MODELS:
        trace = run(model, batch=32)
        me_avg, ve_avg = trace.time_weighted_average()
        print(
            f"  {trace.model:6s} b32 duration={trace.duration_us:10.1f}us "
            f"avg demand {me_avg:.2f} MEs / {ve_avg:.2f} VEs"
        )


def run_result(batch: int = 8, models=None):
    """Structured Fig. 2/3 metrics (see :mod:`repro.api`)."""
    from repro.api.result import figure_result

    models = list(models) if models is not None else list(FIG2_MODELS)
    per_model = {}
    for model in models:
        trace = run(model, batch=batch)
        me_avg, ve_avg = trace.time_weighted_average()
        n_me, n_ve = trace.demand_variance()
        per_model[trace.model] = {
            "duration_us": trace.duration_us,
            "avg_demand_mes": me_avg,
            "avg_demand_ves": ve_avg,
            "distinct_me_levels": n_me,
            "distinct_ve_levels": n_ve,
        }
    return figure_result(
        "fig02", {"models": per_model},
        {"batch": batch, "max_mes": FIG2_MAX_MES, "max_ves": FIG2_MAX_VES},
    )


if __name__ == "__main__":
    main()
