"""Request-stream generators for serving experiments.

The paper's methodology is closed-loop: "we run inference requests
continuously for each workload until all collocated workloads have
completed a certain number of requests".  Open-loop Poisson and steady
streams are provided for the latency-under-load examples.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.errors import ConfigError


def closed_loop() -> None:
    """Sentinel for closed-loop operation (Tenant arrivals=None)."""
    return None


def poisson_arrivals(
    rate_rps: float,
    duration_s: float,
    frequency_hz: float,
    seed: Optional[int] = 0,
) -> List[float]:
    """Poisson arrival times in cycles over ``duration_s`` seconds."""
    if rate_rps <= 0 or duration_s <= 0:
        raise ConfigError("rate and duration must be positive")
    rng = random.Random(seed)
    arrivals: List[float] = []
    t = 0.0
    while True:
        t += rng.expovariate(rate_rps)
        if t >= duration_s:
            break
        arrivals.append(t * frequency_hz)
    return arrivals


def steady_arrivals(
    rate_rps: float, count: int, frequency_hz: float
) -> List[float]:
    """Evenly spaced arrivals: ``count`` requests at ``rate_rps``."""
    if rate_rps <= 0 or count < 1:
        raise ConfigError("rate must be positive and count >= 1")
    period = frequency_hz / rate_rps
    return [i * period for i in range(count)]
