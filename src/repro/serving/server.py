"""Serving runners: collocate workloads under a scheme and measure.

``run_collocation`` reproduces the paper's main methodology (SectionV-A):
two workloads, each on a vNPU with half the core's engines, executed
under one of {PMT, V10, Neu10-NH, Neu10, Neu10-temporal} until every
workload completes its request target.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api import registries
from repro.config import DEFAULT_CORE, NpuCoreConfig
from repro.serving.metrics import PairMetrics, TenantMetrics
from repro.sim.engine import SimResult, Simulator, Tenant
from repro.sim.scheduler_base import SchedulerBase
from repro.workloads.traces import build_trace

SCHEME_PMT = "pmt"
SCHEME_V10 = "v10"
SCHEME_NEU10_NH = "neu10-nh"
SCHEME_NEU10 = "neu10"
SCHEME_TEMPORAL = "neu10-temporal"

#: The paper's default comparison set -- a snapshot of the scheduler
#: registry (:data:`repro.api.registries.SCHEDULERS`) at import time,
#: kept for backwards compatibility.  Code that must see schemes
#: registered later should call
#: :func:`repro.api.registries.default_scheme_names` instead.
ALL_SCHEMES = registries.default_scheme_names()

#: Which ISA each scheme's workloads are compiled with.  A snapshot of
#: the registry at import time, kept for backwards compatibility --
#: prefer :func:`repro.api.registries.scheme_isa`, which also sees
#: schemes registered later.
SCHEME_ISA = registries.scheme_isa_map()


def make_scheduler(scheme: str) -> SchedulerBase:
    """Instantiate a fresh scheduler (delegates to the registry)."""
    return registries.make_scheduler(scheme)


@dataclass
class WorkloadSpec:
    """One tenant of a serving run."""

    model: str
    batch: int = 32
    alloc_mes: Optional[int] = None
    alloc_ves: Optional[int] = None
    priority: float = 1.0
    arrivals: Optional[Sequence[float]] = None


@dataclass
class ServingConfig:
    """Parameters of one collocation measurement."""

    core: NpuCoreConfig = field(default_factory=lambda: DEFAULT_CORE)
    target_requests: int = 8
    record_assignment: bool = False
    record_ops: bool = True
    record_bandwidth: bool = False
    horizon_cycles: float = float("inf")


def _build_tenants(
    specs: Sequence[WorkloadSpec], scheme: str, cfg: ServingConfig
) -> List[Tenant]:
    isa = registries.scheme_isa(scheme)
    tenants: List[Tenant] = []
    default_mes = max(1, cfg.core.num_mes // max(1, len(specs)))
    default_ves = max(1, cfg.core.num_ves // max(1, len(specs)))
    for idx, spec in enumerate(specs):
        trace = build_trace(spec.model, spec.batch, core=cfg.core)
        tenants.append(
            Tenant(
                tenant_id=idx,
                name=trace.abbrev,
                graph=trace.compiled(isa),
                alloc_mes=spec.alloc_mes if spec.alloc_mes is not None else default_mes,
                alloc_ves=spec.alloc_ves if spec.alloc_ves is not None else default_ves,
                target_requests=cfg.target_requests,
                priority=spec.priority,
                arrivals=list(spec.arrivals) if spec.arrivals is not None else None,
            )
        )
    return tenants


def _to_metrics(result: SimResult, scheme: str, pair_label: str) -> PairMetrics:
    tenants = [
        TenantMetrics(
            name=tr.name,
            scheme=scheme,
            p95_latency_cycles=tr.p95_latency,
            mean_latency_cycles=tr.mean_latency,
            throughput_rps=tr.throughput_rps,
            me_utilization=tr.me_utilization,
            ve_utilization=tr.ve_utilization,
            blocked_fraction=tr.blocked_fraction,
            completed_requests=tr.completed_requests,
        )
        for tr in result.tenants.values()
    ]
    op_durations = {
        tid: result.stats.op_durations(tid) for tid in result.tenants
    }
    return PairMetrics(
        pair=pair_label,
        scheme=scheme,
        tenants=tenants,
        total_me_utilization=result.stats.me_utilization(),
        total_ve_utilization=result.stats.ve_utilization(),
        preemption_count=result.stats.preemption_count,
        total_cycles=result.total_cycles,
        op_durations=op_durations,
    )


@dataclass
class PreparedCollocation:
    """A built-but-unrun collocation measurement: step ``sim`` with any
    driver (``sim.run()`` or a mega-batch engine) and summarise the
    result with :func:`finalize_collocation`."""

    sim: Simulator
    scheme: str
    pair_label: str


def prepare_collocation(
    specs: Sequence[WorkloadSpec],
    scheme: str,
    cfg: Optional[ServingConfig] = None,
) -> PreparedCollocation:
    """Build the simulator for one collocation run."""
    cfg = cfg if cfg is not None else ServingConfig()
    tenants = _build_tenants(specs, scheme, cfg)
    sim = Simulator(
        cfg.core,
        make_scheduler(scheme),
        tenants,
        horizon_cycles=cfg.horizon_cycles,
        record_assignment=cfg.record_assignment,
        record_ops=cfg.record_ops,
        record_bandwidth=cfg.record_bandwidth,
    )
    pair_label = "+".join(t.name for t in tenants)
    return PreparedCollocation(sim=sim, scheme=scheme, pair_label=pair_label)


def finalize_collocation(
    prep: PreparedCollocation, result: SimResult
) -> PairMetrics:
    """Summarise a finished collocation run."""
    return _to_metrics(result, prep.scheme, prep.pair_label)


def run_collocation(
    specs: Sequence[WorkloadSpec],
    scheme: str,
    cfg: Optional[ServingConfig] = None,
) -> PairMetrics:
    """Run collocated workloads under ``scheme`` and summarise."""
    prep = prepare_collocation(specs, scheme, cfg)
    return finalize_collocation(prep, prep.sim.run())


def run_solo(
    spec: WorkloadSpec,
    cfg: Optional[ServingConfig] = None,
    isa: str = "neuisa",
    scheme: str = SCHEME_NEU10_NH,
) -> PairMetrics:
    """Run a single workload alone (used as the isolation reference and
    for the characterisation figures)."""
    cfg = cfg if cfg is not None else ServingConfig()
    trace = build_trace(spec.model, spec.batch, core=cfg.core)
    tenant = Tenant(
        tenant_id=0,
        name=trace.abbrev,
        graph=trace.compiled(isa),
        alloc_mes=spec.alloc_mes if spec.alloc_mes is not None else cfg.core.num_mes,
        alloc_ves=spec.alloc_ves if spec.alloc_ves is not None else cfg.core.num_ves,
        target_requests=cfg.target_requests,
        priority=spec.priority,
        arrivals=list(spec.arrivals) if spec.arrivals is not None else None,
    )
    sim = Simulator(
        cfg.core,
        make_scheduler(scheme),
        [tenant],
        horizon_cycles=cfg.horizon_cycles,
        record_assignment=cfg.record_assignment,
        record_ops=cfg.record_ops,
        record_bandwidth=cfg.record_bandwidth,
    )
    result = sim.run()
    return _to_metrics(result, scheme, trace.abbrev)
