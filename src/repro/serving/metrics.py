"""Result containers and summary math for serving experiments."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ConfigError


def percentile(values: List[float], pct: float) -> float:
    """Nearest-rank percentile (matches TenantResult.latency_percentile).

    ``pct`` must lie in [0, 100]: the rank formula clamps so pct=0 is
    the minimum and any percentile of a single-sample list is that
    sample, but out-of-range percentiles raise instead of silently
    clamping to min/max.
    """
    if not 0.0 <= pct <= 100.0:
        raise ConfigError(f"percentile must be in [0, 100], got {pct}")
    if not values:
        return 0.0
    ordered = sorted(values)
    idx = min(len(ordered) - 1, max(0, math.ceil(pct / 100.0 * len(ordered)) - 1))
    return ordered[idx]


def slo_attainment(
    latencies: List[float], target_cycles: float, offered: Optional[int] = None
) -> float:
    """Fraction of requests served within ``target_cycles``.

    With ``offered`` (open-loop accounting) requests that never finished
    count as misses; without it only completed requests are judged.
    """
    if target_cycles <= 0:
        raise ConfigError("SLO target must be positive")
    denom = offered if offered is not None else len(latencies)
    if denom <= 0:
        return 1.0
    attained = sum(1 for lat in latencies if lat <= target_cycles)
    return attained / denom


def goodput_rps(
    latencies: List[float], target_cycles: float, duration_s: float
) -> float:
    """Requests per second that met their SLO (the open-loop figure of
    merit: throughput stops counting once latency blows the target)."""
    if duration_s <= 0:
        raise ConfigError("duration must be positive")
    attained = sum(1 for lat in latencies if lat <= target_cycles)
    return attained / duration_s


@dataclass
class TenantMetrics:
    """Per-workload outcome of one serving run."""

    name: str
    scheme: str
    p95_latency_cycles: float
    mean_latency_cycles: float
    throughput_rps: float
    me_utilization: float
    ve_utilization: float
    blocked_fraction: float
    completed_requests: int

    def normalized_to(self, baseline: "TenantMetrics") -> "TenantMetrics":
        """Latency/throughput relative to a baseline run (PMT in the
        paper's figures).  Latencies are ratios (>1 is worse), throughput
        is a ratio (>1 is better)."""
        def ratio(a: float, b: float) -> float:
            return a / b if b > 0 else 0.0

        return TenantMetrics(
            name=self.name,
            scheme=self.scheme,
            p95_latency_cycles=ratio(self.p95_latency_cycles, baseline.p95_latency_cycles),
            mean_latency_cycles=ratio(self.mean_latency_cycles, baseline.mean_latency_cycles),
            throughput_rps=ratio(self.throughput_rps, baseline.throughput_rps),
            me_utilization=self.me_utilization,
            ve_utilization=self.ve_utilization,
            blocked_fraction=self.blocked_fraction,
            completed_requests=self.completed_requests,
        )


@dataclass
class PairMetrics:
    """Outcome of one collocation run (both workloads + core totals)."""

    pair: str
    scheme: str
    tenants: List[TenantMetrics] = field(default_factory=list)
    total_me_utilization: float = 0.0
    total_ve_utilization: float = 0.0
    preemption_count: int = 0
    total_cycles: float = 0.0
    #: Optional per-op duration map used by the Fig. 23 breakdown.
    op_durations: Optional[Dict[int, Dict[str, List[float]]]] = None

    def tenant(self, name: str) -> TenantMetrics:
        for t in self.tenants:
            if t.name == name:
                return t
        raise KeyError(f"no tenant {name!r} in pair {self.pair!r}")
