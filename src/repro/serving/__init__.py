"""Multi-tenant ML inference serving harness.

Glues vNPUs, workload traces, a scheduling policy and request streams
into one runnable experiment, and summarises results the way the paper's
evaluation reports them (p95 tail latency, average latency, throughput,
ME/VE utilization, harvesting overhead).
"""

from repro.serving.metrics import (
    PairMetrics,
    TenantMetrics,
    goodput_rps,
    percentile,
    slo_attainment,
)
from repro.serving.requests import closed_loop, poisson_arrivals, steady_arrivals
from repro.serving.server import (
    SCHEME_NEU10,
    SCHEME_NEU10_NH,
    SCHEME_PMT,
    SCHEME_TEMPORAL,
    SCHEME_V10,
    ServingConfig,
    make_scheduler,
    run_collocation,
    run_solo,
)

__all__ = [
    "PairMetrics",
    "SCHEME_NEU10",
    "SCHEME_NEU10_NH",
    "SCHEME_PMT",
    "SCHEME_TEMPORAL",
    "SCHEME_V10",
    "ServingConfig",
    "TenantMetrics",
    "closed_loop",
    "goodput_rps",
    "make_scheduler",
    "percentile",
    "slo_attainment",
    "poisson_arrivals",
    "run_collocation",
    "run_solo",
    "steady_arrivals",
]
