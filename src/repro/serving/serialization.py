"""JSON import/export for profiles, results and experiment records.

Downstream users want to archive runs and diff reproductions, so every
result container serialises to plain JSON-compatible dicts:

- workload profiles (m, v, per-op breakdown),
- per-tenant serving metrics and pair results,
- simulator op-duration records.

Round-trips are property-tested; schema versioning guards stale files.
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO, List, Union

from repro.compiler.profiler import OpProfile, WorkloadProfile
from repro.errors import ConfigError
from repro.serving.metrics import PairMetrics, TenantMetrics

#: Bump when the on-disk layout changes incompatibly.
SCHEMA_VERSION = 1


# ----------------------------------------------------------------------
# Profiles
# ----------------------------------------------------------------------
def profile_to_dict(profile: WorkloadProfile) -> Dict[str, Any]:
    return {
        "schema": SCHEMA_VERSION,
        "kind": "workload_profile",
        "name": profile.name,
        "ops": [
            {
                "name": op.name,
                "is_me_op": op.is_me_op,
                "me_cycles": op.me_cycles,
                "ve_cycles": op.ve_cycles,
                "hbm_bytes": op.hbm_bytes,
                "duration_cycles": op.duration_cycles,
            }
            for op in profile.ops
        ],
    }


def profile_from_dict(data: Dict[str, Any]) -> WorkloadProfile:
    _check(data, "workload_profile")
    profile = WorkloadProfile(name=data["name"])
    for op in data["ops"]:
        profile.ops.append(
            OpProfile(
                name=op["name"],
                is_me_op=op["is_me_op"],
                me_cycles=op["me_cycles"],
                ve_cycles=op["ve_cycles"],
                hbm_bytes=op["hbm_bytes"],
                duration_cycles=op["duration_cycles"],
            )
        )
    return profile


# ----------------------------------------------------------------------
# Serving metrics
# ----------------------------------------------------------------------
def tenant_metrics_to_dict(metrics: TenantMetrics) -> Dict[str, Any]:
    return {
        "schema": SCHEMA_VERSION,
        "kind": "tenant_metrics",
        "name": metrics.name,
        "scheme": metrics.scheme,
        "p95_latency_cycles": metrics.p95_latency_cycles,
        "mean_latency_cycles": metrics.mean_latency_cycles,
        "throughput_rps": metrics.throughput_rps,
        "me_utilization": metrics.me_utilization,
        "ve_utilization": metrics.ve_utilization,
        "blocked_fraction": metrics.blocked_fraction,
        "completed_requests": metrics.completed_requests,
    }


def tenant_metrics_from_dict(data: Dict[str, Any]) -> TenantMetrics:
    _check(data, "tenant_metrics")
    return TenantMetrics(
        name=data["name"],
        scheme=data["scheme"],
        p95_latency_cycles=data["p95_latency_cycles"],
        mean_latency_cycles=data["mean_latency_cycles"],
        throughput_rps=data["throughput_rps"],
        me_utilization=data["me_utilization"],
        ve_utilization=data["ve_utilization"],
        blocked_fraction=data["blocked_fraction"],
        completed_requests=data["completed_requests"],
    )


def pair_metrics_to_dict(pair: PairMetrics) -> Dict[str, Any]:
    return {
        "schema": SCHEMA_VERSION,
        "kind": "pair_metrics",
        "pair": pair.pair,
        "scheme": pair.scheme,
        "tenants": [tenant_metrics_to_dict(t) for t in pair.tenants],
        "total_me_utilization": pair.total_me_utilization,
        "total_ve_utilization": pair.total_ve_utilization,
        "preemption_count": pair.preemption_count,
        "total_cycles": pair.total_cycles,
    }


def pair_metrics_from_dict(data: Dict[str, Any]) -> PairMetrics:
    _check(data, "pair_metrics")
    return PairMetrics(
        pair=data["pair"],
        scheme=data["scheme"],
        tenants=[tenant_metrics_from_dict(t) for t in data["tenants"]],
        total_me_utilization=data["total_me_utilization"],
        total_ve_utilization=data["total_ve_utilization"],
        preemption_count=data["preemption_count"],
        total_cycles=data["total_cycles"],
    )


# ----------------------------------------------------------------------
# File helpers
# ----------------------------------------------------------------------
_SERIALIZERS = {
    WorkloadProfile: profile_to_dict,
    TenantMetrics: tenant_metrics_to_dict,
    PairMetrics: pair_metrics_to_dict,
}
_DESERIALIZERS = {
    "workload_profile": profile_from_dict,
    "tenant_metrics": tenant_metrics_from_dict,
    "pair_metrics": pair_metrics_from_dict,
}

Serializable = Union[WorkloadProfile, TenantMetrics, PairMetrics]


def dump(obj: Serializable, fp: IO[str]) -> None:
    serializer = _SERIALIZERS.get(type(obj))
    if serializer is None:
        raise ConfigError(f"cannot serialise {type(obj).__name__}")
    json.dump(serializer(obj), fp, indent=2)


def dumps(obj: Serializable) -> str:
    serializer = _SERIALIZERS.get(type(obj))
    if serializer is None:
        raise ConfigError(f"cannot serialise {type(obj).__name__}")
    return json.dumps(serializer(obj), indent=2)


def load(fp: IO[str]) -> Serializable:
    return _from_data(json.load(fp))


def loads(text: str) -> Serializable:
    return _from_data(json.loads(text))


def _from_data(data: Dict[str, Any]) -> Serializable:
    kind = data.get("kind")
    deserializer = _DESERIALIZERS.get(kind)
    if deserializer is None:
        raise ConfigError(f"unknown serialised kind {kind!r}")
    return deserializer(data)


def _check(data: Dict[str, Any], kind: str) -> None:
    if data.get("kind") != kind:
        raise ConfigError(
            f"expected kind {kind!r}, found {data.get('kind')!r}"
        )
    if data.get("schema") != SCHEMA_VERSION:
        raise ConfigError(
            f"schema version mismatch: file {data.get('schema')!r}, "
            f"library {SCHEMA_VERSION}"
        )
