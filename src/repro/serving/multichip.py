"""Multi-chip / multi-core data-parallel inference (paper SectionIV).

"Currently, Neu10 supports multi-chip inference with data parallelism by
using multiple vNPU chips. ... The guest ML framework can handle the
data distribution across multiple vNPU cores in the same way as that on
physical NPUs" (SectionIII-A: TensorFlow-style data parallelism).

A :class:`DataParallelVnpu` shards a request's batch across several
vNPU cores.  Each shard executes the per-shard compiled graph on its
own core (cores have private SRAM/HBM channels, so shard simulations are
independent); the request completes when the slowest shard finishes plus
an all-gather step over the board interconnect.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.config import NpuCoreConfig
from repro.errors import ConfigError
from repro.serving.server import SCHEME_ISA, SCHEME_NEU10, make_scheduler
from repro.sim.engine import Simulator, Tenant
from repro.workloads.catalog import model_info
from repro.workloads.traces import build_trace

#: Board interconnect (ICI-like) bandwidth between cores, bytes/second.
INTERCONNECT_BYTES_PER_S = 100e9


@dataclass
class ShardResult:
    core_index: int
    shard_batch: int
    latencies_cycles: List[float]

    @property
    def mean_latency(self) -> float:
        if not self.latencies_cycles:
            return 0.0
        return sum(self.latencies_cycles) / len(self.latencies_cycles)


@dataclass
class DataParallelResult:
    model: str
    batch: int
    num_cores: int
    shards: List[ShardResult] = field(default_factory=list)
    allgather_cycles: float = 0.0

    @property
    def request_latency_cycles(self) -> float:
        """One data-parallel request: slowest shard + all-gather."""
        if not self.shards:
            return 0.0
        per_request = []
        rounds = min(len(s.latencies_cycles) for s in self.shards)
        for r in range(rounds):
            per_request.append(
                max(s.latencies_cycles[r] for s in self.shards)
                + self.allgather_cycles
            )
        return sum(per_request) / len(per_request) if per_request else 0.0

    def throughput_rps(self, core: NpuCoreConfig) -> float:
        latency = self.request_latency_cycles
        if latency <= 0:
            return 0.0
        return 1.0 / core.cycles_to_seconds(latency)


class DataParallelVnpu:
    """A vNPU spanning several cores with synchronous data parallelism."""

    def __init__(
        self,
        model: str,
        batch: int,
        num_cores: int,
        core: NpuCoreConfig,
        scheme: str = SCHEME_NEU10,
        alloc_mes: Optional[int] = None,
        alloc_ves: Optional[int] = None,
    ) -> None:
        if num_cores < 1:
            raise ConfigError("need at least one core")
        if batch < num_cores:
            raise ConfigError(
                f"cannot shard batch {batch} across {num_cores} cores"
            )
        self.model = model_info(model).name
        self.batch = batch
        self.num_cores = num_cores
        self.core = core
        self.scheme = scheme
        self.alloc_mes = alloc_mes if alloc_mes is not None else core.num_mes
        self.alloc_ves = alloc_ves if alloc_ves is not None else core.num_ves

    def shard_batches(self) -> List[int]:
        """Even batch split; early shards absorb the remainder."""
        base = self.batch // self.num_cores
        rem = self.batch % self.num_cores
        return [base + (1 if i < rem else 0) for i in range(self.num_cores)]

    def _allgather_cycles(self) -> float:
        """Synchronisation cost: each core broadcasts its shard's output
        activations over the board interconnect (ring all-gather)."""
        graph = model_info(self.model).build(max(1, self.batch // self.num_cores))
        # Use the final operator's output as the exchanged tensor.
        last = graph.topo_order()[-1]
        bytes_exchanged = last.op.output_bytes * (self.num_cores - 1)
        seconds = bytes_exchanged / INTERCONNECT_BYTES_PER_S
        return self.core.seconds_to_cycles(seconds)

    def run(self, target_requests: int = 2) -> DataParallelResult:
        result = DataParallelResult(
            model=self.model,
            batch=self.batch,
            num_cores=self.num_cores,
            allgather_cycles=(
                self._allgather_cycles() if self.num_cores > 1 else 0.0
            ),
        )
        isa = SCHEME_ISA[self.scheme]
        for core_index, shard_batch in enumerate(self.shard_batches()):
            trace = build_trace(self.model, shard_batch, core=self.core)
            tenant = Tenant(
                tenant_id=0,
                name=f"{trace.abbrev}.shard{core_index}",
                graph=trace.compiled(isa),
                alloc_mes=self.alloc_mes,
                alloc_ves=self.alloc_ves,
                target_requests=target_requests,
            )
            sim = Simulator(
                self.core, make_scheduler(self.scheme), [tenant],
                record_ops=False,
            )
            sim_result = sim.run()
            result.shards.append(
                ShardResult(
                    core_index=core_index,
                    shard_batch=shard_batch,
                    latencies_cycles=sim_result.tenant(0).latencies_cycles,
                )
            )
        return result


def scaling_study(
    model: str,
    batch: int,
    core_counts: List[int],
    core: NpuCoreConfig,
    scheme: str = SCHEME_NEU10,
    target_requests: int = 2,
) -> Dict[int, DataParallelResult]:
    """Latency/throughput across data-parallel widths."""
    out: Dict[int, DataParallelResult] = {}
    for n in core_counts:
        if batch < n:
            continue
        vnpu = DataParallelVnpu(model, batch, n, core, scheme=scheme)
        out[n] = vnpu.run(target_requests=target_requests)
    return out


def parallel_efficiency(results: Dict[int, DataParallelResult]) -> Dict[int, float]:
    """Speedup(n) / n relative to the 1-core run."""
    if 1 not in results:
        raise ConfigError("scaling study needs the 1-core baseline")
    base = results[1].request_latency_cycles
    out: Dict[int, float] = {}
    for n, result in results.items():
        latency = result.request_latency_cycles
        if latency > 0:
            out[n] = (base / latency) / n
    return out
