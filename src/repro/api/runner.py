"""Execute scenarios: one dispatch for every front-end.

``run_scenario`` turns a declarative :class:`repro.api.scenario.Scenario`
into a uniform :class:`repro.api.result.RunResult` by driving the same
engines the bespoke entry points used to call directly:

- ``serving``   -> :func:`repro.serving.server.run_collocation`
- ``open_loop`` -> :func:`repro.traffic.openloop.run_open_loop`
- ``cluster``   -> :func:`repro.traffic.cluster_sim.run_cluster_traffic`
- ``llm``       -> :func:`repro.llmserve.engine.run_llm_serving`
- ``figure``    -> the :data:`repro.api.figures.FIGURES` registry

``sweep_scenario`` fans scenario variants out over
:func:`repro.parallel.parallel_map`; results are identical for any
worker count because each variant is an independent simulation rebuilt
from its serialised spec.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.api.result import RunResult, base_provenance, canonical_digest
from repro.api.scenario import Scenario, ScenarioChurn, ScenarioTenant
from repro.errors import ConfigError
from repro.parallel import parallel_map


# ----------------------------------------------------------------------
# Spec adapters
# ----------------------------------------------------------------------
def _to_workload_spec(tenant: ScenarioTenant):
    from repro.serving.server import WorkloadSpec

    return WorkloadSpec(
        model=tenant.model,
        batch=tenant.batch,
        alloc_mes=tenant.alloc_mes,
        alloc_ves=tenant.alloc_ves,
        priority=tenant.priority,
    )


def _to_traffic_spec(tenant: ScenarioTenant):
    from repro.traffic.openloop import TrafficTenantSpec
    from repro.traffic.slo import SloSpec

    return TrafficTenantSpec(
        model=tenant.model,
        batch=tenant.batch,
        weight=tenant.weight,
        slo=SloSpec(
            target_cycles=tenant.slo_target_cycles,
            relative=tenant.slo_relative,
        ),
        alloc_mes=tenant.alloc_mes,
        alloc_ves=tenant.alloc_ves,
        priority=tenant.priority,
        arrival=tenant.arrival,
    )


def _slo_report_metrics(report) -> Dict[str, Any]:
    return {
        "name": report.name,
        "offered": report.offered,
        "completed": report.completed,
        "attained": report.attained,
        "attainment": report.attainment,
        "goodput_rps": report.goodput_rps,
        "throughput_rps": report.throughput_rps,
        "mean_latency_cycles": report.mean_latency,
        "p50_latency_cycles": report.p50_latency,
        "p95_latency_cycles": report.p95_latency,
        "p99_latency_cycles": report.p99_latency,
        "mean_queueing_cycles": report.mean_queueing_delay,
    }


# ----------------------------------------------------------------------
# Kind runners
# ----------------------------------------------------------------------
def _serving_config(scenario: Scenario):
    from repro.serving.server import ServingConfig

    return ServingConfig(
        core=scenario.core(),
        target_requests=scenario.target_requests,
    )


def _run_serving(scenario: Scenario) -> RunResult:
    from repro.serving.server import run_collocation

    cfg = _serving_config(scenario)
    specs = [_to_workload_spec(t) for t in scenario.tenants]
    pair = run_collocation(specs, scenario.scheme, cfg)
    return _serving_run_result(scenario, pair)


def _serving_run_result(scenario: Scenario, pair) -> RunResult:
    metrics: Dict[str, Any] = {
        "pair": pair.pair,
        "tenants": [
            {
                "name": t.name,
                "p95_latency_cycles": t.p95_latency_cycles,
                "mean_latency_cycles": t.mean_latency_cycles,
                "throughput_rps": t.throughput_rps,
                "me_utilization": t.me_utilization,
                "ve_utilization": t.ve_utilization,
                "blocked_fraction": t.blocked_fraction,
                "completed_requests": t.completed_requests,
            }
            for t in pair.tenants
        ],
        "total_me_utilization": pair.total_me_utilization,
        "total_ve_utilization": pair.total_ve_utilization,
        "preemption_count": pair.preemption_count,
        "simulated_cycles": pair.total_cycles,
    }
    metadata = {
        "target_requests": scenario.target_requests,
        "models": [t.model for t in scenario.tenants],
    }
    return _wrap(scenario, metrics, metadata)


def _open_loop_config(scenario: Scenario):
    from repro.traffic.openloop import OpenLoopConfig

    return OpenLoopConfig(
        core=scenario.core(),
        duration_s=scenario.duration_s,
        load=scenario.load,
        arrival=scenario.arrival,
        seed=scenario.seed,
        drain=scenario.drain,
    )


def _run_open_loop(scenario: Scenario) -> RunResult:
    from repro.traffic.openloop import run_open_loop

    cfg = _open_loop_config(scenario)
    specs = [_to_traffic_spec(t) for t in scenario.tenants]
    result = run_open_loop(specs, scenario.scheme, cfg)
    return _open_loop_run_result(scenario, result)


def _open_loop_run_result(scenario: Scenario, result) -> RunResult:
    metrics: Dict[str, Any] = {
        "tenants": [_slo_report_metrics(r) for r in result.reports],
        "min_attainment": result.min_attainment,
        "me_utilization": result.me_utilization,
        "ve_utilization": result.ve_utilization,
        "simulated_cycles": result.total_cycles,
    }
    metadata = {
        "arrival": scenario.arrival,
        "load": scenario.load,
        "duration_s": scenario.duration_s,
        "drain": scenario.drain,
        "models": [t.model for t in scenario.tenants],
    }
    return _wrap(scenario, metrics, metadata)


def cluster_inputs(scenario: Scenario):
    """The ``(events, cfg)`` pair a cluster scenario simulates.

    The single translation every cluster front-end shares: ``repro
    run`` (plain, checkpointed and resumed), ``repro serve`` and the
    fuzz harness's deep checks all build their
    :class:`~repro.traffic.cluster_sim.ClusterSimulation` from this, so
    a checkpoint taken by one is restorable by the others.
    """
    from repro.traffic.cluster_sim import ClusterTrafficConfig

    if scenario.kind != "cluster":
        raise ConfigError(
            f"scenario {scenario.name!r} is kind {scenario.kind!r}; "
            "cluster inputs only exist for kind: cluster"
        )
    events = [_to_churn_event(e) for e in scenario.churn]
    cfg = ClusterTrafficConfig(
        num_hosts=scenario.hosts,
        cores_per_host=scenario.cores_per_host,
        core=scenario.core(),
        scheme=scenario.scheme,
        arrival=scenario.arrival,
        load=scenario.load,
        end_s=scenario.duration_s,
        seed=scenario.seed,
        pools=tuple(p.to_spec() for p in scenario.pools),
        autoscaler=(
            scenario.autoscaler.make()
            if scenario.autoscaler is not None
            else None
        ),
        autoscale_interval_s=(
            scenario.autoscaler.interval_s
            if scenario.autoscaler is not None
            else None
        ),
        virtualization=(
            scenario.virtualization.to_spec()
            if scenario.virtualization is not None
            else None
        ),
        executor=(
            scenario.executor.to_spec()
            if scenario.executor is not None
            else None
        ),
        faults=tuple(f.to_spec() for f in scenario.faults),
    )
    return events, cfg


def _run_cluster(scenario: Scenario) -> RunResult:
    from repro.traffic.cluster_sim import run_cluster_traffic

    events, cfg = cluster_inputs(scenario)
    result = run_cluster_traffic(events, cfg)
    return _cluster_run_result(scenario, cfg, result)


def _cluster_run_result(scenario: Scenario, cfg, result) -> RunResult:
    autoscaler = cfg.autoscaler
    virtualization = cfg.virtualization
    metrics: Dict[str, Any] = {
        "tenants": [
            _slo_report_metrics(result.reports[name])
            for name in sorted(result.reports)
        ],
        "host_me_utilization": dict(result.host_me_utilization),
        "host_ve_utilization": dict(result.host_ve_utilization),
        "cluster_me_utilization": result.cluster_me_utilization,
        "cluster_ve_utilization": result.cluster_ve_utilization,
        "admission_rate": result.admission_rate,
        "rejected": list(result.rejected),
        "segments": result.segments,
        "simulated_cycles": result.simulated_cycles,
    }
    metadata = {
        "hosts": scenario.hosts,
        "cores_per_host": scenario.cores_per_host,
        "arrival": scenario.arrival,
        "load": scenario.load,
        "duration_s": scenario.duration_s,
        "churn_events": len(scenario.churn),
    }
    if autoscaler is not None:
        # Only stamped when the loop is closed, so autoscaler-free
        # results stay bit-identical to pre-autoscaling releases.
        metrics["cluster_attainment"] = result.cluster_attainment
        metrics["mean_active_hosts"] = result.mean_active_hosts
        metrics["host_count_timeline"] = [
            [t, n] for t, n in result.host_count_timeline
        ]
        metrics["autoscale_events"] = [
            e.to_dict() for e in result.autoscale_events
        ]
        metadata["autoscaler"] = {
            "policy": scenario.autoscaler.policy,
            **autoscaler.describe(),
        }
        if scenario.pools:
            metadata["pools"] = [
                {
                    "name": p.name,
                    "cores_per_host": p.cores_per_host,
                    "min_hosts": p.min_hosts,
                    "max_hosts": p.max_hosts,
                    "initial_hosts": p.to_spec().start_hosts,
                }
                for p in scenario.pools
            ]
    if scenario.faults or result.fault_events:
        # Only stamped when faults are injected, so fault-free results
        # stay bit-identical to releases without fault injection.
        # ``result.fault_events`` without a ``faults:`` block means
        # live injection (repro serve), which must surface too.
        metrics.setdefault("cluster_attainment", result.cluster_attainment)
        metrics["fault_events"] = [dict(e) for e in result.fault_events]
        metadata["faults"] = [
            {"kind": f.kind, "time_s": f.time_s} for f in scenario.faults
        ]
    if virtualization is not None:
        # Only stamped when the control plane is configured, so
        # virtualization-free results stay bit-identical to
        # pre-virtualization releases.
        metrics.setdefault("cluster_attainment", result.cluster_attainment)
        metrics["virtualization"] = result.virtualization.to_dict()
        metadata["virtualization"] = {
            "num_vfs": virtualization.num_vfs,
            "pool_num_vfs": dict(virtualization.pool_num_vfs),
            "hypercall_cost_s": virtualization.hypercall_cost_s,
        }
    wrapped = _wrap(scenario, metrics, metadata)
    if scenario.executor is not None:
        # Only stamped when the block is present, so executor-free runs
        # stay bit-identical to pre-executor releases.
        wrapped.provenance["executor"] = {
            "backend": scenario.executor.backend
        }
    return wrapped


def _to_churn_event(event: ScenarioChurn):
    from repro.traffic.cluster_sim import ChurnEvent
    from repro.traffic.openloop import TrafficTenantSpec
    from repro.traffic.slo import SloSpec

    spec = None
    if event.model is not None:
        spec = TrafficTenantSpec(
            model=event.model,
            batch=event.batch,
            weight=event.weight,
            slo=SloSpec(relative=event.slo_relative),
            priority=event.priority,
        )
    return ChurnEvent(
        time_s=event.time_s,
        action=event.action,
        name=event.name,
        spec=spec,
        num_mes=event.num_mes,
        num_ves=event.num_ves,
    )


def _run_llm(scenario: Scenario) -> RunResult:
    from repro.llmserve.engine import LlmServeConfig, run_llm_serving

    block = scenario.llm
    cfg = LlmServeConfig(
        core=scenario.core(),
        scheme=scenario.scheme,
        seed=scenario.seed,
        duration_s=scenario.duration_s,
        load=scenario.load,
        arrival=scenario.arrival,
        batch_tokens=block.batch_tokens,
        m_total=block.m_total,
        preemption_mode=block.preemption_mode,
        victim_policy=block.victim_policy,
        drain=scenario.drain,
        ttft_slo_scale=block.ttft_slo_scale,
        tpot_slo_scale=block.tpot_slo_scale,
        step_overhead_cycles=block.step_overhead_cycles,
        cycles_per_token=block.cycles_per_token,
        swap_cycles_per_token=block.swap_cycles_per_token,
    )
    result = run_llm_serving(block.tenant_specs(), cfg)
    metrics = result.metrics()
    metrics["simulated_cycles"] = result.duration_cycles
    metadata = {
        "arrival": scenario.arrival,
        "load": scenario.load,
        "duration_s": scenario.duration_s,
        "drain": scenario.drain,
        "tenants": [t.name for t in block.tenants],
        "calibrated": block.step_overhead_cycles is None
        or block.cycles_per_token is None,
    }
    return _wrap(scenario, metrics, metadata)


def _run_figure(scenario: Scenario) -> RunResult:
    from repro.api.figures import FIGURES

    info = FIGURES.get(scenario.figure)
    result = info.run_result(**dict(scenario.params))
    # Rebrand under the scenario's name but keep the figure metrics.
    result.scenario = scenario.name
    result.metadata.setdefault("figure", scenario.figure)
    result.provenance.update(
        base_provenance(seed=None, scenario_digest=scenario.digest())
    )
    return result


_KIND_RUNNERS = {
    "serving": _run_serving,
    "open_loop": _run_open_loop,
    "cluster": _run_cluster,
    "llm": _run_llm,
    "figure": _run_figure,
}


def _wrap(
    scenario: Scenario, metrics: Dict[str, Any], metadata: Dict[str, Any]
) -> RunResult:
    metadata = dict(metadata)
    if scenario.description:
        metadata["description"] = scenario.description
    if scenario.hardware:
        metadata["hardware"] = dict(scenario.hardware)
    return RunResult(
        scenario=scenario.name,
        kind=scenario.kind,
        scheme=scenario.scheme,
        metrics=metrics,
        metadata=metadata,
        provenance=base_provenance(
            seed=scenario.seed, scenario_digest=scenario.digest()
        ),
    )


# ----------------------------------------------------------------------
# Public entry points
# ----------------------------------------------------------------------
def run_scenario(
    scenario: Scenario,
    *,
    resume: bool = False,
    checkpoint=None,
    on_segment=None,
) -> RunResult:
    """Run one scenario and return its structured result.

    The one dispatch every front-end shares: validates the spec
    (resolving scheme/arrival/model/figure/autoscaler names against the
    registries, so typos fail before any simulation), routes on
    ``scenario.kind`` to the matching engine, and wraps the outcome in
    a :class:`~repro.api.result.RunResult` stamped with provenance
    (seed, canonical scenario digest, library version, fast-path flag).

    Cluster scenarios additionally take the stepped driver's knobs:
    ``checkpoint`` (a :class:`~repro.api.scenario.ScenarioCheckpoint`,
    overriding the scenario's own ``checkpoint:`` block) journals a
    segment snapshot every ``every`` segments, ``resume=True`` restores
    from the furthest recorded snapshot and continues, and
    ``on_segment(done, total, observation)`` fires after every
    simulated segment.  None of them changes the metrics: a resumed or
    checkpointed run is bit-identical to an uninterrupted plain one.

    Deterministic: same spec, same library version -> same metrics,
    byte for byte.  Example::

        from repro.api import Scenario, ScenarioTenant, run_scenario

        result = run_scenario(Scenario(
            name="demo", kind="open_loop", scheme="neu10",
            tenants=(ScenarioTenant(model="MNIST", batch=8),),
        ))
        result.metrics["min_attainment"]

    Raises :class:`repro.errors.ConfigError` on an invalid spec.
    """
    scenario.validate()
    block = checkpoint if checkpoint is not None else scenario.checkpoint
    if scenario.kind == "cluster":
        if block is not None or resume or on_segment is not None:
            from repro.traffic.cluster_sim import run_cluster_checkpointed

            events, cfg = cluster_inputs(scenario)
            result = run_cluster_checkpointed(
                events,
                cfg,
                directory=block.directory if block is not None else None,
                resume=resume,
                every=block.every if block is not None else 1,
                on_segment=on_segment,
            )
            return _cluster_run_result(scenario, cfg, result)
    elif block is not None or resume or on_segment is not None:
        raise ConfigError(
            f"scenario {scenario.name!r} is kind {scenario.kind!r}; "
            "checkpoint/resume/per-segment progress only apply to "
            "kind: cluster"
        )
    runner = _KIND_RUNNERS.get(scenario.kind)
    if runner is None:  # _validate_shape guards this; belt and braces
        raise ConfigError(f"unknown scenario kind {scenario.kind!r}")
    return runner(scenario)


def _run_scenario_payload(payload: str) -> Dict[str, Any]:
    """Picklable sweep worker: JSON spec in, RunResult dict out."""
    scenario = Scenario.from_dict(json.loads(payload))
    return run_scenario(scenario).to_dict()


#: Sweep points per mega-batch: enough lanes to amortise the batch
#: engine's round overhead, small enough that a multi-process sweep
#: still spreads chunks across its pool.
_SWEEP_BATCH = 64


def _prepare_batchable(scenario: Scenario):
    """``(simulator, finalize)`` when the scenario's engine supports the
    build/step/summarise split the mega-batch core needs, else None.

    Covered kinds: ``open_loop`` and ``serving`` -- single-simulator
    runs whose construction is deterministic and independent of the
    stepping driver.  Other kinds (cluster, llm, figure) orchestrate
    their own multi-stage drivers and fall back to ``run_scenario``.
    """
    if scenario.kind == "open_loop":
        from repro.traffic.openloop import finalize_open_loop, prepare_open_loop

        prep = prepare_open_loop(
            [_to_traffic_spec(t) for t in scenario.tenants],
            scenario.scheme,
            _open_loop_config(scenario),
        )
        return prep.sim, (
            lambda result: _open_loop_run_result(
                scenario, finalize_open_loop(prep, result)
            )
        )
    if scenario.kind == "serving":
        from repro.serving.server import (
            finalize_collocation,
            prepare_collocation,
        )

        prep = prepare_collocation(
            [_to_workload_spec(t) for t in scenario.tenants],
            scenario.scheme,
            _serving_config(scenario),
        )
        return prep.sim, (
            lambda result: _serving_run_result(
                scenario, finalize_collocation(prep, result)
            )
        )
    return None


def _run_scenario_batch_payload(payloads: Sequence[str]) -> List[Dict[str, Any]]:
    """Picklable sweep worker: co-step one chunk of sweep points through
    a single :class:`repro.megabatch.MegaBatchEngine` batch.

    Batchable scenarios become lanes of one engine; the rest run through
    ``run_scenario`` unchanged.  Output order matches input order, and
    every metric is bit-identical to the per-point worker's."""
    scenarios = [Scenario.from_dict(json.loads(p)) for p in payloads]
    prepared = [_prepare_batchable(sc) for sc in scenarios]
    sims = [pf[0] for pf in prepared if pf is not None]
    if len(sims) > 1:
        from repro.megabatch import run_simulators

        lane_results = iter(run_simulators(sims))
        out = []
        for scenario, pf in zip(scenarios, prepared):
            if pf is None:
                out.append(run_scenario(scenario).to_dict())
            else:
                out.append(pf[1](next(lane_results)).to_dict())
        return out
    return [run_scenario(sc).to_dict() for sc in scenarios]


def sweep_variants(
    scenario: Scenario,
    param: Optional[str] = None,
    values: Optional[Sequence[Any]] = None,
) -> List[Scenario]:
    """The scenario variants a sweep will run.

    ``param``/``values`` override the scenario's embedded ``sweep:``
    block piecewise: a supplied ``values`` always wins (with the block's
    param when ``param`` is omitted), and a supplied ``param`` reuses the
    block's values only when it names the same field.
    """
    block = scenario.sweep
    if param is None:
        if block is None:
            raise ConfigError(
                f"scenario {scenario.name!r} has no sweep block; "
                "pass --param/--values (or add 'sweep:' to the file)"
            )
        param = block.param
        if values is None:
            values = block.values
    elif values is None:
        if block is not None and block.param == param:
            values = block.values
        else:
            raise ConfigError(
                f"sweeping {param!r} needs explicit values "
                "(--values a,b,c)"
            )
    if not values:
        raise ConfigError("sweep needs at least one value")
    # Variants must not share one checkpoint journal (each has its own
    # config digest; the journal would refuse all but the first).
    base = scenario.replaced(sweep=None, checkpoint=None)
    return [
        base.replaced(
            **{param: value, "name": f"{scenario.name}@{param}={value}"}
        )
        for value in values
    ]


def sweep_scenario(
    scenario: Scenario,
    param: Optional[str] = None,
    values: Optional[Sequence[Any]] = None,
    max_workers: Optional[int] = None,
) -> List[RunResult]:
    """Run one variant per value, fanned out over a process pool.

    ``param`` is any scenario field name, including dotted hardware
    overrides (``hardware.num_mes``); ``values`` replace it one at a
    time, each variant renamed ``<name>@<param>=<value>``.  With both
    omitted the scenario's embedded ``sweep:`` block is used.  Variants
    are validated *before* any worker starts, rebuilt from their
    serialised spec inside the pool, and returned in value order --
    results are identical for any ``max_workers`` (``None`` = CPU
    count / ``REPRO_PARALLEL_WORKERS``; ``1`` = in-process).

    Example::

        results = sweep_scenario(sc, param="load", values=[0.5, 0.8, 1.1])
        [r.metrics["min_attainment"] for r in results]
    """
    if scenario.executor is not None:
        # The declarative executor block routes the sweep through the
        # repro.exec subsystem (results are bit-identical; see
        # sweep_scenario_report).
        return sweep_scenario_report(
            scenario, param=param, values=values, max_workers=max_workers
        ).results
    variants = sweep_variants(scenario, param, values)
    for variant in variants:
        variant.validate()  # fail fast, before spawning workers
    payloads = [json.dumps(v.to_dict()) for v in variants]
    from repro.megabatch import megabatch_default

    if megabatch_default() and len(payloads) > 1:
        # Mega-batch path: chunk the sweep and co-step each chunk's
        # simulations through one struct-of-arrays engine per worker.
        # Bit-identical to the per-point path (the REPRO_SIM_MEGABATCH=0
        # escape hatch) for any chunking or worker count.
        chunks = [
            payloads[i : i + _SWEEP_BATCH]
            for i in range(0, len(payloads), _SWEEP_BATCH)
        ]
        chunked = parallel_map(
            _run_scenario_batch_payload, chunks, max_workers=max_workers
        )
        results = [r for chunk in chunked for r in chunk]
    else:
        results = parallel_map(
            _run_scenario_payload, payloads, max_workers=max_workers
        )
    return [RunResult.from_dict(r) for r in results]


# ----------------------------------------------------------------------
# Executor-backed sweeps: pluggable fan-out, checkpoints, resume
# ----------------------------------------------------------------------
#: Progress callback: ``on_progress(done, total, outcome)`` fires once
#: per shard in completion order (``outcome`` is a
#: :class:`repro.exec.TaskOutcome`); ``done`` counts resumed shards too.
#: A resumed run additionally fires once up front with ``outcome=None``
#: and ``done`` = the number of shards loaded from the checkpoint.
ProgressHook = Callable[[int, int, Any], None]


@dataclass
class SweepReport:
    """Everything an executor-backed sweep settled.

    ``results`` hold the successful points in value order (all of them,
    unless ``keep_going`` let some fail permanently -- those appear in
    ``failures`` instead, as structured
    :class:`repro.exec.TaskFailure`).  ``resumed`` of the ``total``
    shards were loaded from the checkpoint journal rather than run.
    """

    results: List[RunResult] = field(default_factory=list)
    failures: List[Any] = field(default_factory=list)
    total: int = 0
    executed: int = 0
    resumed: int = 0
    backend: str = "pool"

    @property
    def ok(self) -> bool:
        return not self.failures


def _resolve_exec_spec(
    scenario: Scenario,
    executor: Optional[str],
    max_workers: Optional[int],
    task_timeout_s: Optional[float],
    keep_going: Optional[bool],
):
    """Merge the scenario's ``executor:`` block with call overrides.

    Overrides never touch the scenario itself: the variant digests (and
    so the checkpoint identity) stay equal across backends, which is
    what lets one journal serve any of them.
    """
    from repro.exec import ExecSpec

    block = scenario.executor
    spec = block.to_spec() if block is not None else ExecSpec()
    changes: Dict[str, Any] = {}
    if executor is not None:
        changes["backend"] = executor
    if max_workers is not None:
        changes["max_workers"] = max_workers
    if task_timeout_s is not None:
        changes["task_timeout_s"] = task_timeout_s
    if keep_going is not None:
        changes["keep_going"] = keep_going
    return dataclasses.replace(spec, **changes) if changes else spec


def _sweep_identity_digest(
    scenario: Scenario, param: str, values: Sequence[Any]
) -> str:
    """Canonical digest naming *which sweep this is* for the checkpoint
    manifest: the base scenario plus what is swept.  Deliberately
    independent of backend, worker count and CLI overrides."""
    base = scenario.replaced(sweep=None)
    return canonical_digest(
        {
            "base_scenario": base.to_dict(),
            "param": param,
            "values": list(values),
        }
    )


def sweep_scenario_report(
    scenario: Scenario,
    param: Optional[str] = None,
    values: Optional[Sequence[Any]] = None,
    max_workers: Optional[int] = None,
    executor: Optional[str] = None,
    checkpoint: Optional[Union[str, Path]] = None,
    resume: bool = False,
    keep_going: Optional[bool] = None,
    task_timeout_s: Optional[float] = None,
    on_progress: Optional[ProgressHook] = None,
) -> SweepReport:
    """Run a sweep through a pluggable, fault-tolerant executor.

    The robust superset of :func:`sweep_scenario`: each sweep point
    becomes one shard, keyed by its variant scenario's content digest,
    dispatched through the :data:`repro.api.registries.EXECUTORS`
    backend chosen by ``executor`` (or the scenario's ``executor:``
    block; default ``pool``).  With ``checkpoint`` set, every settled
    shard is journalled to disk as it completes, and ``resume=True``
    skips shards the journal already holds -- a killed sweep continues
    where it stopped, and the merged results are bit-identical to an
    uninterrupted run's (each shard is a deterministic function of its
    spec).

    ``keep_going`` turns a permanently failed point into a structured
    entry of ``report.failures`` instead of an
    :class:`repro.errors.ExecError` abort; ``task_timeout_s`` bounds a
    single point's wall clock (enforced by the ``local-queue`` backend).
    Overrides do not modify the scenario, so shard digests -- and the
    checkpoint identity -- are the same whatever backend runs them.

    Each result's provenance gains an ``executor`` block
    (``{"backend": name}``) recording how it was dispatched; everything
    else is byte-identical to :func:`sweep_scenario` output.
    """
    from repro.exec import ExecTask, SweepJournal, summarize_failures
    from repro.api.registries import make_executor

    spec = _resolve_exec_spec(
        scenario, executor, max_workers, task_timeout_s, keep_going
    )
    variants = sweep_variants(scenario, param, values)
    for variant in variants:
        variant.validate()  # fail fast, before spawning workers
    # Recover the effective (param, values) pair for the manifest.
    block = scenario.sweep
    eff_param = param if param is not None else block.param  # type: ignore[union-attr]
    if values is None and block is not None and (
        param is None or block.param == eff_param
    ):
        eff_values: Sequence[Any] = block.values
    else:
        eff_values = list(values)  # type: ignore[arg-type]

    shard_keys = [v.digest() for v in variants]
    journal = None
    if checkpoint is not None:
        journal = SweepJournal(
            checkpoint,
            _sweep_identity_digest(scenario, eff_param, eff_values),
            shard_keys,
            resume=resume,
        )
    elif resume:
        raise ConfigError("--resume needs --checkpoint DIR to resume from")

    report = SweepReport(
        total=len(variants),
        resumed=0 if journal is None else sum(
            1 for key in shard_keys if key in journal.completed
        ),
        backend=spec.backend,
    )
    try:
        todo = [
            (index, key)
            for index, key in enumerate(shard_keys)
            if journal is None or key not in journal.completed
        ]
        report.executed = len(todo)
        if resume and on_progress is not None:
            on_progress(report.resumed, report.total, None)
        done_box = [report.resumed]

        def _on_complete(outcome) -> None:
            if journal is not None:
                if outcome.ok:
                    journal.record(outcome.key, outcome.value)
                else:
                    journal.record_failure(
                        outcome.key, outcome.failure.to_dict()
                    )
            done_box[0] += 1
            if on_progress is not None:
                on_progress(done_box[0], report.total, outcome)

        fresh: Dict[str, Any] = {}
        if todo:
            tasks = [
                ExecTask(
                    key=key,
                    payload=json.dumps(variants[index].to_dict()),
                )
                for index, key in todo
            ]
            backend_exec = make_executor(spec)
            outcomes = backend_exec.map_tasks(
                _run_scenario_payload, tasks, on_complete=_on_complete
            )
            for outcome in outcomes:
                if outcome.ok:
                    fresh[outcome.key] = outcome.value
                else:
                    report.failures.append(outcome.failure)

        for key in shard_keys:
            payload = (
                journal.completed.get(key)
                if journal is not None and key in journal.completed
                else fresh.get(key)
            )
            if payload is None:
                continue  # permanently failed under keep_going
            result = RunResult.from_dict(payload)
            # Dispatch provenance: stamped at collection (not in the
            # journal), so a resumed run and an uninterrupted run of the
            # same backend are bit-identical, and runs on different
            # backends differ in nothing else.
            result.provenance["executor"] = {"backend": spec.backend}
            report.results.append(result)
    finally:
        if journal is not None:
            journal.close()
    if report.failures and keep_going is not True and not spec.keep_going:
        # Unreachable via the built-in backends (they raise ExecError
        # themselves when keep_going is off); guard third-party ones.
        raise ConfigError(summarize_failures(report.failures))
    return report
