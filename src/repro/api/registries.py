"""The built-in plugin registries: schedulers, arrivals, workloads.

These are the single source of truth for the names every front-end
(CLI, experiments, traffic, benchmarks) used to hard-code:

- :data:`SCHEDULERS` -- scheduling schemes.  Each entry is a
  :class:`SchedulerInfo` carrying the factory, the ISA its workloads
  are compiled with, and whether the scheme belongs to the paper's
  default comparison set.
- :data:`ARRIVALS`   -- open-loop arrival-process builders
  (:mod:`repro.traffic.arrivals` kinds).
- :data:`WORKLOADS`  -- the Table I model zoo
  (:mod:`repro.workloads.catalog` entries, canonical names only).
- :data:`AUTOSCALERS` -- cluster autoscaling policies
  (:mod:`repro.cluster.autoscale` controllers for ``kind: cluster``
  scenarios with an ``autoscaler:`` block).
- :data:`PREEMPTION` -- LLM-serving victim policies
  (:mod:`repro.llmserve.preemption` selectors for ``kind: llm``
  scenarios; who gets evicted under KV-cache pressure).
- :data:`EXECUTORS` -- sweep fan-out backends
  (:mod:`repro.exec` executors for ``repro sweep --executor`` and
  scenario ``executor:`` blocks; how independent simulations are
  dispatched, retried and checkpointed).

Built-ins are registered lazily on first lookup, so importing this
module costs nothing; third-party policies extend the system with e.g.
``SCHEDULERS.add("my-policy", SchedulerInfo(...))`` and every scenario
file, CLI choice list and sweep immediately accepts the new name.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Tuple

from repro.api.registry import Registry


@dataclass(frozen=True)
class SchedulerInfo:
    """Registry entry for one scheduling scheme."""

    name: str
    factory: Callable[[], object]
    #: ISA the scheme's workloads are compiled with ("vliw" | "neuisa").
    isa: str = "neuisa"
    #: Part of the paper's default four-scheme comparison set?
    default: bool = True
    description: str = ""

    def make(self) -> object:
        return self.factory()


@dataclass(frozen=True)
class ArrivalInfo:
    """Registry entry for one arrival-process kind."""

    name: str
    #: ``builder(mean_rate_per_cycle, **kwargs) -> ArrivalProcess``.
    builder: Callable[..., object]
    description: str = ""


@dataclass(frozen=True)
class AutoscalerInfo:
    """Registry entry for one cluster autoscaling policy.

    ``factory(**params)`` builds a fresh, stateful
    :class:`repro.cluster.autoscale.Autoscaler`; ``params`` come from a
    scenario's ``autoscaler: {params: ...}`` block, so constructor
    keywords are the policy's declarative configuration surface.
    """

    name: str
    factory: Callable[..., object]
    description: str = ""

    def make(self, **params: object) -> object:
        return self.factory(**params)


def _load_schedulers(reg: Registry) -> None:
    from repro.baselines.pmt import PmtScheduler
    from repro.baselines.v10 import V10Scheduler
    from repro.sim.sched_neu10 import Neu10Scheduler
    from repro.sim.sched_static import StaticPartitionScheduler
    from repro.sim.sched_temporal import TemporalNeu10Scheduler

    reg.add("pmt", SchedulerInfo(
        "pmt", PmtScheduler, isa="vliw",
        description="preemptive multi-task baseline (VLIW ISA)"))
    reg.add("v10", SchedulerInfo(
        "v10", V10Scheduler, isa="vliw",
        description="V10 spatial-sharing baseline (VLIW ISA)"))
    reg.add("neu10-nh", SchedulerInfo(
        "neu10-nh", StaticPartitionScheduler,
        description="Neu10 without harvesting (static partition)"))
    reg.add("neu10", SchedulerInfo(
        "neu10", Neu10Scheduler,
        description="Neu10 with idle-engine harvesting"))
    reg.add("neu10-temporal", SchedulerInfo(
        "neu10-temporal", TemporalNeu10Scheduler, default=False,
        description="Neu10 temporal-sharing variant"))


def _load_arrivals(reg: Registry) -> None:
    from repro.traffic import arrivals

    descriptions = {
        "poisson": "memoryless steady load",
        "bursty": "two-state MMPP on/off bursts",
        "diurnal": "sinusoidal day/night rate swing",
        "trace": "replay of recorded timestamps",
    }
    for kind, builder in arrivals.BUILDERS.items():
        reg.add(kind, ArrivalInfo(kind, builder, descriptions.get(kind, "")))


def _load_workloads(reg: Registry) -> None:
    from repro.workloads import catalog

    for info in catalog.catalog_entries():
        reg.add(info.name, info)


@dataclass(frozen=True)
class PreemptionInfo:
    """Registry entry for one LLM-serving victim policy.

    ``factory()`` builds a fresh
    :class:`repro.llmserve.preemption.VictimPolicy`; selection itself is
    driven by the engine's seeded RNG, so policies stay stateless.
    """

    name: str
    factory: Callable[[], object]
    description: str = ""

    def make(self) -> object:
        return self.factory()


@dataclass(frozen=True)
class ExecutorInfo:
    """Registry entry for one sweep fan-out backend.

    ``factory(spec)`` builds a fresh :class:`repro.exec.Executor` from
    an :class:`repro.exec.ExecSpec`; the spec carries every declarative
    knob (worker count, timeout, retries, keep-going), so third-party
    backends plug in with just a name and a constructor.
    """

    name: str
    factory: Callable[..., object]
    description: str = ""

    def make(self, spec: object) -> object:
        return self.factory(spec)


def _load_autoscalers(reg: Registry) -> None:
    from repro.cluster import autoscale

    entries = (
        (autoscale.StaticAutoscaler,
         "fixed provisioning (baseline; never scales)"),
        (autoscale.ThresholdAutoscaler,
         "hysteresis on utilization: up above `high`, down below `low`"),
        (autoscale.TargetUtilizationAutoscaler,
         "HPA-style proportional control toward a utilization setpoint"),
        (autoscale.SloBurnRateAutoscaler,
         "error-budget burn rate on SLO attainment (fast up, slow down)"),
    )
    for cls, description in entries:
        reg.add(cls.name, AutoscalerInfo(cls.name, cls, description))


def _load_preemption(reg: Registry) -> None:
    from repro.llmserve.preemption import VICTIM_POLICIES

    descriptions = {
        "lifo": "evict the newest running request (least sunk work)",
        "fifo": "evict the oldest running request",
        "random": "evict a seeded uniform pick (reproducible)",
    }
    for name, cls in VICTIM_POLICIES.items():
        reg.add(name, PreemptionInfo(name, cls, descriptions.get(name, "")))


def _load_executors(reg: Registry) -> None:
    from repro.exec import (
        LocalQueueExecutor,
        PoolExecutor,
        SerialExecutor,
    )

    entries = (
        (SerialExecutor,
         "in-process reference: retries, no parallelism, no timeouts"),
        (PoolExecutor,
         "process-pool fan-out with in-worker retries (default)"),
        (LocalQueueExecutor,
         "spawn-based crew: per-task timeouts, crash isolation, respawn"),
    )
    for cls, description in entries:
        reg.add(cls.name, ExecutorInfo(cls.name, cls, description))


SCHEDULERS = Registry("scheduler scheme", loader=_load_schedulers)
ARRIVALS = Registry("arrival process", loader=_load_arrivals)
WORKLOADS = Registry("workload", loader=_load_workloads)
AUTOSCALERS = Registry("autoscaler policy", loader=_load_autoscalers)
PREEMPTION = Registry("victim policy", loader=_load_preemption)
EXECUTORS = Registry("executor backend", loader=_load_executors)


# ----------------------------------------------------------------------
# Convenience views (the names the old hard-coded lists spelled out)
# ----------------------------------------------------------------------
def make_scheduler(scheme: str) -> object:
    """Instantiate a fresh scheduler for ``scheme`` (registry-backed)."""
    info = SCHEDULERS.get(scheme)
    return info.make()


def scheme_isa(scheme: str) -> str:
    return SCHEDULERS.get(scheme).isa


def scheme_isa_map() -> Dict[str, str]:
    """``{scheme: isa}`` for every registered scheme."""
    return {name: info.isa for name, info in SCHEDULERS.items()}


def default_scheme_names() -> Tuple[str, ...]:
    """The paper's default comparison set (legacy ``ALL_SCHEMES``)."""
    return tuple(
        name for name, info in SCHEDULERS.items() if info.default
    )


def all_scheme_names() -> Tuple[str, ...]:
    """Every registered scheme, including non-default variants."""
    return SCHEDULERS.names()


def arrival_kind_names(generative_only: bool = False) -> Tuple[str, ...]:
    names = ARRIVALS.names()
    if generative_only:
        # "trace" needs recorded timestamps, so CLI choice lists that
        # synthesise arrivals exclude it.
        names = tuple(n for n in names if n != "trace")
    return names


def workload_names() -> Tuple[str, ...]:
    return WORKLOADS.names()


def make_autoscaler(policy: str, **params) -> object:
    """Instantiate a fresh autoscaler for ``policy`` (registry-backed).

    ``params`` are passed to the policy's constructor, so unknown knobs
    fail with the policy's own :class:`~repro.errors.ConfigError`.
    """
    info = AUTOSCALERS.get(policy)
    return info.make(**params)


def autoscaler_names() -> Tuple[str, ...]:
    return AUTOSCALERS.names()


def make_executor(spec: object) -> object:
    """Instantiate a fresh executor for ``spec.backend`` (registry-backed).

    ``spec`` is an :class:`repro.exec.ExecSpec`; the entry's factory
    receives it whole, so backend-specific knobs stay declarative.
    """
    info = EXECUTORS.get(spec.backend)  # type: ignore[attr-defined]
    return info.make(spec)


def executor_names() -> Tuple[str, ...]:
    return EXECUTORS.names()


def make_victim_policy(policy: str) -> object:
    """Instantiate a fresh LLM victim policy (registry-backed)."""
    info = PREEMPTION.get(policy)
    return info.make()


def victim_policy_names() -> Tuple[str, ...]:
    return PREEMPTION.names()
