"""String-keyed plugin registries.

A :class:`Registry` maps names to factory objects and is the extension
point the scenario layer is built on: schedulers, arrival processes,
workloads and figure experiments are all looked up by name, so a
third-party policy plugs in with one :meth:`Registry.add` call instead
of a patch to ``sim/engine.py`` or a new CLI branch.

Lookups of unknown names raise :class:`repro.errors.ConfigError` with
the full list of registered names (and a close-match suggestion when
one exists), so a typo in a scenario file fails with an actionable
message rather than a ``KeyError``.
"""

from __future__ import annotations

import difflib
import threading
from typing import Callable, Dict, Iterator, List, Optional, Tuple, TypeVar

from repro.errors import ConfigError

T = TypeVar("T")


class Registry:
    """A named map from strings to entries, with lazy builtin loading.

    ``loader`` is called once, on first access, to register the built-in
    entries; this keeps registry modules import-light (no simulator or
    compiler imports until a lookup actually needs them).

    Typical plugin flow (any of the built-in registries in
    :mod:`repro.api.registries` works the same way)::

        from repro.api import SCHEDULERS, SchedulerInfo

        SCHEDULERS.add("my-policy", SchedulerInfo(
            "my-policy", MyScheduler, description="..."))
        SCHEDULERS.get("my-policy")      # -> the SchedulerInfo
        "my-policy" in SCHEDULERS        # -> True
        SCHEDULERS.names()               # built-ins first, then plugins

    After the ``add`` every scenario file, CLI choice list and sweep
    accepts the new name; ``remove`` is the teardown used by tests.
    """

    def __init__(
        self,
        kind: str,
        loader: Optional[Callable[["Registry"], None]] = None,
    ) -> None:
        self.kind = kind
        self._entries: Dict[str, object] = {}
        self._loader = loader
        self._loaded = loader is None
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def add(self, name: str, entry: object, overwrite: bool = False) -> None:
        """Register ``entry`` under ``name``.

        Re-registering an existing name is an error unless ``overwrite``
        is set -- silent shadowing of a builtin is how plugin systems
        grow un-debuggable.
        """
        if not name or not isinstance(name, str):
            raise ConfigError(f"{self.kind} name must be a non-empty string")
        self._ensure_loaded()
        with self._lock:
            if name in self._entries and not overwrite:
                raise ConfigError(
                    f"{self.kind} {name!r} is already registered "
                    "(pass overwrite=True to replace it)"
                )
            self._entries[name] = entry

    def register(self, name: str, **_ignored) -> Callable[[T], T]:
        """Decorator form of :meth:`add` for function/class entries."""

        def deco(obj: T) -> T:
            self.add(name, obj)
            return obj

        return deco

    def remove(self, name: str) -> None:
        """Unregister ``name`` (used by tests and plugin teardown)."""
        self._ensure_loaded()
        with self._lock:
            self._entries.pop(name, None)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, name: str) -> object:
        self._ensure_loaded()
        with self._lock:
            entry = self._entries.get(name)
        if entry is None:
            raise ConfigError(self._unknown_message(name))
        return entry

    def names(self) -> Tuple[str, ...]:
        """Registered names in registration (builtins-first) order."""
        self._ensure_loaded()
        with self._lock:
            return tuple(self._entries)

    def items(self) -> List[Tuple[str, object]]:
        self._ensure_loaded()
        with self._lock:
            return list(self._entries.items())

    def __contains__(self, name: str) -> bool:
        self._ensure_loaded()
        with self._lock:
            return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self.names())

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _ensure_loaded(self) -> None:
        if self._loaded:
            return
        with self._lock:
            if self._loaded:
                return
            # Mark loaded *before* running the loader so the loader's own
            # add() calls do not recurse into it; roll back on failure so
            # the next lookup retries (and re-raises the root cause)
            # instead of serving a half-populated registry.
            self._loaded = True
            assert self._loader is not None
            try:
                self._loader(self)
            except BaseException:
                self._entries.clear()
                self._loaded = False
                raise

    def _unknown_message(self, name: str) -> str:
        known = ", ".join(sorted(self._entries)) or "<none registered>"
        hint = ""
        close = difflib.get_close_matches(name, list(self._entries), n=1)
        if close:
            hint = f" (did you mean {close[0]!r}?)"
        return f"unknown {self.kind} {name!r}{hint}; known: {known}"
