"""Declarative scenario specs with YAML/JSON round-trip.

A :class:`Scenario` is the single description every front-end consumes:
hardware config, tenant/workload mix, arrival process, scheduler scheme,
duration and SLOs -- as *data*.  The same spec runs through
:func:`repro.api.runner.run_scenario` whether it came from a YAML file
(``repro run scenario.yaml``), a benchmark suite, or was built inline by
an example script.

Five kinds cover the repo's workloads:

======== ==============================================================
serving   closed-loop collocation (the paper's methodology: run until
          every tenant hits ``target_requests``)
open_loop open-loop traffic on one core: arrivals at ``load`` x
          calibrated capacity, scored against per-tenant SLOs
cluster   open-loop traffic across a cluster with tenant churn and,
          optionally, a closed-loop autoscaler over elastic host pools
          (``autoscaler:`` / ``pools:`` blocks)
llm       continuous-batching LLM serving under a KV-cache HBM budget
          with pluggable preemption (the ``llm:`` block)
figure    a registered paper-figure experiment (``figure:`` names it)
======== ==============================================================

``to_dict``/``from_dict`` round-trip losslessly; files may hold one
scenario, a ``scenarios:`` list, or (YAML) a multi-document stream.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.api.result import canonical_digest
from repro.config import DEFAULT_CORE, DEFAULT_SEED, NpuCoreConfig
from repro.errors import ConfigError

SCENARIO_KINDS = ("serving", "open_loop", "cluster", "llm", "figure")


def _require_yaml():
    try:
        import yaml
    except ImportError as exc:  # pragma: no cover - environment-dependent
        raise ConfigError(
            "PyYAML is required for YAML scenario files "
            "(pip install pyyaml), or use JSON"
        ) from exc
    return yaml


def _from_mapping(cls, payload: Mapping[str, Any], what: str):
    """Build dataclass ``cls`` from a mapping, rejecting unknown keys."""
    if not isinstance(payload, Mapping):
        raise ConfigError(f"{what} must be a mapping, got {type(payload).__name__}")
    known = {f.name for f in dataclasses.fields(cls)}
    unknown = set(payload) - known
    if unknown:
        raise ConfigError(
            f"unknown {what} key(s) {sorted(unknown)}; "
            f"known: {sorted(known)}"
        )
    return cls(**payload)


def _nondefault_dict(obj) -> Dict[str, Any]:
    """Dataclass -> dict with fields equal to their default omitted."""
    out: Dict[str, Any] = {}
    for f in dataclasses.fields(obj):
        value = getattr(obj, f.name)
        if f.default is not dataclasses.MISSING:
            if value == f.default:
                continue
        elif f.default_factory is not dataclasses.MISSING:  # type: ignore[misc]
            if value == f.default_factory():  # type: ignore[misc]
                continue
        out[f.name] = value
    return out


@dataclass(frozen=True)
class ScenarioTenant:
    """One tenant of a serving / open-loop scenario."""

    model: str
    batch: int = 8
    #: Relative share of the scenario load factor (open-loop only).
    weight: float = 1.0
    alloc_mes: Optional[int] = None
    alloc_ves: Optional[int] = None
    priority: float = 1.0
    #: SLO as a multiple of calibrated isolated service time...
    slo_relative: float = 5.0
    #: ...unless an absolute cycle target is given (wins when set).
    slo_target_cycles: Optional[float] = None
    #: Per-tenant arrival-kind override (None = scenario default).
    arrival: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.model:
            raise ConfigError("tenant needs a model name")
        if self.batch < 1:
            raise ConfigError("tenant batch size must be positive")
        if self.weight <= 0:
            raise ConfigError("tenant weight must be positive")


@dataclass(frozen=True)
class ScenarioChurn:
    """One tenant arrive/depart event of a cluster scenario."""

    time_s: float
    action: str
    name: str
    model: Optional[str] = None
    batch: int = 8
    num_mes: int = 2
    num_ves: int = 2
    weight: float = 1.0
    slo_relative: float = 5.0
    priority: float = 1.0

    def __post_init__(self) -> None:
        if self.action not in ("arrive", "depart"):
            raise ConfigError(
                f"churn action must be 'arrive' or 'depart', got {self.action!r}"
            )
        if self.action == "arrive" and not self.model:
            raise ConfigError(f"churn arrival {self.name!r} needs a model")


@dataclass(frozen=True)
class ScenarioPool:
    """One elastic host pool of a cluster scenario.

    Mirrors :class:`repro.cluster.autoscale.HostPoolSpec`: the pool owns
    ``max_hosts`` identical hosts, ``initial_hosts`` (default
    ``min_hosts``) are live at t=0, and an autoscaler may move the live
    count within ``[min_hosts, max_hosts]``.
    """

    name: str = "default"
    cores_per_host: int = 1
    min_hosts: int = 1
    max_hosts: int = 4
    initial_hosts: Optional[int] = None

    def __post_init__(self) -> None:
        # Delegate range checking to the cluster-layer spec so the two
        # descriptions cannot drift apart.
        self.to_spec()

    def to_spec(self):
        from repro.cluster.autoscale import HostPoolSpec

        return HostPoolSpec(
            name=self.name,
            cores_per_host=self.cores_per_host,
            min_hosts=self.min_hosts,
            max_hosts=self.max_hosts,
            initial_hosts=self.initial_hosts,
        )


@dataclass(frozen=True)
class ScenarioAutoscaler:
    """Declarative ``autoscaler:`` block of a cluster scenario.

    ``policy`` names an entry of
    :data:`repro.api.registries.AUTOSCALERS`; ``params`` go to the
    policy constructor verbatim; ``interval_s`` adds observation
    boundaries every so many (simulated) seconds so the controller acts
    between churn events too.
    """

    policy: str
    interval_s: Optional[float] = None
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.policy:
            raise ConfigError("autoscaler block needs a policy name")
        if self.interval_s is not None and self.interval_s <= 0:
            raise ConfigError("autoscaler interval_s must be positive")
        object.__setattr__(self, "params", dict(self.params))

    def make(self):
        from repro.api.registries import make_autoscaler

        return make_autoscaler(self.policy, **dict(self.params))


#: One-line docs per ``virtualization:`` field, rendered by ``repro
#: list`` and ``tools/gen_docs.py``; a test pins its keys to the
#: :class:`ScenarioVirtualization` fields so they cannot drift.
VIRTUALIZATION_FIELD_DOCS = {
    "num_vfs": "SR-IOV virtual functions per host (default 16); "
               "admission rejects tenants once a host's pool is empty",
    "pool_num_vfs": "per-pool VF overrides, e.g. {edge: 4}",
    "hypercall_cost_s": "control-plane latency charged per hypercall "
                        "against tenant onboarding/migration",
}


@dataclass(frozen=True)
class ScenarioVirtualization:
    """Declarative ``virtualization:`` block of a cluster scenario.

    Turns the per-host control plane (:mod:`repro.runtime`: SR-IOV VFs,
    hypercalls, IOMMU) into a binding constraint: ``num_vfs`` sizes
    every host's virtual-function pool (``pool_num_vfs`` overrides it
    per named host pool), and ``hypercall_cost_s`` charges control-plane
    latency against tenant onboarding (one create hypercall) and
    migration (destroy + create).  Presence of the block enables the
    control-plane metrics on the result; omitting it keeps results
    bit-identical to releases without virtualization.
    """

    num_vfs: int = 16
    pool_num_vfs: Mapping[str, int] = field(default_factory=dict)
    hypercall_cost_s: float = 0.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "pool_num_vfs", dict(self.pool_num_vfs))
        # Delegate range checking to the cluster-layer spec so the two
        # descriptions cannot drift apart.
        self.to_spec()

    def to_spec(self):
        from repro.cluster.virt import VirtualizationSpec

        return VirtualizationSpec(
            num_vfs=self.num_vfs,
            pool_num_vfs=self.pool_num_vfs,
            hypercall_cost_s=self.hypercall_cost_s,
        )


@dataclass(frozen=True)
class ScenarioLlmTenant:
    """One open-loop LLM tenant inside an ``llm:`` block."""

    name: str
    prompt_tokens: int = 512
    decode_tokens: int = 64
    weight: float = 1.0

    def __post_init__(self) -> None:
        # Delegate range checking to the engine-layer spec so the two
        # descriptions cannot drift apart.
        self.to_spec()

    def to_spec(self):
        from repro.llmserve.engine import LlmTenantSpec

        return LlmTenantSpec(
            name=self.name,
            prompt_tokens=self.prompt_tokens,
            decode_tokens=self.decode_tokens,
            weight=self.weight,
        )


#: One-line docs per ``faults:`` field, rendered by ``repro list`` and
#: ``tools/gen_docs.py``; a test pins its keys to the
#: :class:`ScenarioFault` fields so they cannot drift.
FAULT_FIELD_DOCS = {
    "kind": "failure kind: host-crash, vf-loss, hypercall-spike or "
            "burst-storm",
    "time_s": "when the fault fires (a segment boundary is cut there)",
    "duration_s": "window length for hypercall-spike / burst-storm "
                  "(point faults use 0)",
    "factor": "multiplier applied by window faults (hypercall latency "
              "or offered load)",
    "count": "SR-IOV virtual functions removed by vf-loss",
    "host": "target host name (default: picked by load / free VFs)",
}


@dataclass(frozen=True)
class ScenarioFault:
    """One entry of a cluster scenario's ``faults:`` block.

    Mirrors :class:`repro.cluster.virt.FaultSpec`: a point failure
    (``host-crash``, ``vf-loss``) fires at ``time_s``; a window failure
    (``hypercall-spike``, ``burst-storm``) holds for ``duration_s``
    multiplying hypercall latency or offered load by ``factor``.
    Presence of the block enables the ``fault_events`` audit log on the
    result; omitting it keeps results bit-identical to releases without
    fault injection.
    """

    kind: str
    time_s: float
    duration_s: float = 0.0
    factor: float = 4.0
    count: int = 1
    host: Optional[str] = None

    def __post_init__(self) -> None:
        # Delegate range checking to the cluster-layer spec so the two
        # descriptions cannot drift apart.
        self.to_spec()

    def to_spec(self):
        from repro.cluster.virt import FaultSpec

        return FaultSpec(
            kind=self.kind,
            time_s=self.time_s,
            duration_s=self.duration_s,
            factor=self.factor,
            count=self.count,
            host=self.host,
        )


#: One-line docs per ``llm:`` field, rendered by ``repro list`` and
#: ``tools/gen_docs.py``; a test pins its keys to the
#: :class:`ScenarioLlm` fields so they cannot drift.
LLM_FIELD_DOCS = {
    "tenants": "open-loop LLM tenants: "
               "{name, prompt_tokens, decode_tokens, weight}",
    "batch_tokens": "per-step batch token budget b "
                    "(decodes count 1, prefills their full prompt)",
    "m_total": "device HBM KV budget in tokens; "
               "overflow preempts running requests",
    "preemption_mode": "victim KV handling: 'swap' (preserve off-device, "
                       "pay reload) or 'sacrifice' (drop, restart)",
    "victim_policy": "PREEMPTION registry entry picking who is evicted "
                     "(lifo, fifo, random)",
    "ttft_slo_scale": "TTFT target as a multiple of the unqueued "
                      "prefill step time",
    "tpot_slo_scale": "TPOT target as a multiple of a full-batch "
                      "decode step time",
    "step_overhead_cycles": "explicit step overhead d0 override "
                            "(with cycles_per_token, skips calibration)",
    "cycles_per_token": "explicit marginal cost d1 override "
                        "(with step_overhead_cycles, skips calibration)",
    "swap_cycles_per_token": "KV reload cost per token on swap-in "
                             "(default: HBM streaming time)",
}


@dataclass(frozen=True)
class ScenarioLlm:
    """Declarative ``llm:`` block of an ``llm`` scenario.

    Configures the :mod:`repro.llmserve` continuous-batching engine:
    open-loop tenants (prompt/decode geometry), the per-step batch token
    budget ``batch_tokens``, the device HBM KV budget ``m_total``, and
    how memory pressure is resolved (``preemption_mode`` x
    ``victim_policy``, the latter a
    :data:`repro.api.registries.PREEMPTION` entry).  Step costs come
    from simulator calibration unless both explicit overrides are set.
    """

    tenants: Tuple[ScenarioLlmTenant, ...] = ()
    batch_tokens: int = 2048
    m_total: int = 8192
    preemption_mode: str = "swap"
    victim_policy: str = "lifo"
    ttft_slo_scale: float = 5.0
    tpot_slo_scale: float = 1.5
    step_overhead_cycles: Optional[float] = None
    cycles_per_token: Optional[float] = None
    swap_cycles_per_token: Optional[float] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "tenants", tuple(self.tenants))
        from repro.llmserve.preemption import check_preemption_mode

        check_preemption_mode(self.preemption_mode)
        if self.batch_tokens < 1 or self.m_total < 1:
            raise ConfigError("batch_tokens and m_total must be positive")
        for tenant in self.tenants:
            if tenant.prompt_tokens > self.batch_tokens:
                raise ConfigError(
                    f"llm tenant {tenant.name!r} prompt "
                    f"({tenant.prompt_tokens}) exceeds "
                    f"batch_tokens={self.batch_tokens}"
                )
            if tenant.prompt_tokens + tenant.decode_tokens > self.m_total:
                raise ConfigError(
                    f"llm tenant {tenant.name!r} peak KV "
                    f"({tenant.prompt_tokens + tenant.decode_tokens}) "
                    f"exceeds m_total={self.m_total}"
                )

    def tenant_specs(self):
        return tuple(t.to_spec() for t in self.tenants)


#: One-line docs per ``executor:`` field, rendered by ``repro list``
#: and ``tools/gen_docs.py``; a test pins its keys to the
#: :class:`ScenarioExecutor` fields so they cannot drift.
EXECUTOR_FIELD_DOCS = {
    "backend": "EXECUTORS registry entry dispatching sweep points "
               "(serial, pool, local-queue, or a plugin)",
    "max_workers": "fan-out width (default: REPRO_PARALLEL_WORKERS "
                   "or the usable CPU count)",
    "task_timeout_s": "per-task wall-clock limit; enforced by "
                      "local-queue, warned-and-ignored elsewhere",
    "retries": "extra attempts after a failed/timed-out/crashed task "
               "(default 2)",
    "retry_backoff_s": "base delay before attempt k, doubled each "
                       "retry (local-queue)",
    "keep_going": "record permanently failed points as structured "
                  "failures instead of aborting the sweep",
}


@dataclass(frozen=True)
class ScenarioExecutor:
    """Declarative ``executor:`` block: how a sweep is fanned out.

    ``backend`` names an entry of
    :data:`repro.api.registries.EXECUTORS`; the remaining fields mirror
    :class:`repro.exec.ExecSpec` (worker count, per-task timeout,
    bounded retries with backoff, per-item fault isolation).  The block
    configures *dispatch only* -- simulations are deterministic
    functions of their spec, so results are bit-identical across
    backends, worker counts and resumes.  Omitting the block keeps
    sweeps on the legacy in-process path, bit-identical to releases
    without executors.
    """

    backend: str = "pool"
    max_workers: Optional[int] = None
    task_timeout_s: Optional[float] = None
    retries: Optional[int] = None
    retry_backoff_s: Optional[float] = None
    keep_going: bool = False

    def __post_init__(self) -> None:
        if not self.backend:
            raise ConfigError("executor block needs a backend name")
        # Delegate range checking to the exec-layer spec so the two
        # descriptions cannot drift apart.
        self.to_spec()

    def to_spec(self):
        from repro.exec import DEFAULT_BACKOFF_S, DEFAULT_RETRIES, ExecSpec

        return ExecSpec(
            backend=self.backend,
            max_workers=self.max_workers,
            task_timeout_s=self.task_timeout_s,
            retries=DEFAULT_RETRIES if self.retries is None else self.retries,
            retry_backoff_s=(
                DEFAULT_BACKOFF_S
                if self.retry_backoff_s is None
                else self.retry_backoff_s
            ),
            keep_going=self.keep_going,
        )

    def make(self):
        from repro.api.registries import make_executor

        return make_executor(self.to_spec())


#: One-line docs per ``checkpoint:`` field, rendered by ``repro list``
#: and ``tools/gen_docs.py``; a test pins its keys to the
#: :class:`ScenarioCheckpoint` fields so they cannot drift.
CHECKPOINT_FIELD_DOCS = {
    "directory": "journal directory for segment checkpoints (created "
                 "on first run; 'repro run --resume' restores from it)",
    "every": "record a checkpoint every N completed segments "
             "(default 1)",
}


@dataclass(frozen=True)
class ScenarioCheckpoint:
    """Declarative ``checkpoint:`` block: journaled segment snapshots.

    A cluster run with this block records a
    :class:`repro.traffic.stepper.ClusterCheckpoint` into a
    :class:`repro.exec.SweepJournal` under ``directory`` every
    ``every`` completed segments; ``repro run --resume`` restores from
    the furthest one and continues, and the completed run is
    bit-identical to an uninterrupted one.  The block configures
    persistence only -- metrics never depend on it.
    """

    directory: str
    every: int = 1

    def __post_init__(self) -> None:
        if not self.directory:
            raise ConfigError("checkpoint block needs a directory")
        if self.every < 1:
            raise ConfigError("checkpoint cadence ('every') must be >= 1")


@dataclass(frozen=True)
class SweepSpec:
    """Declarative sweep: vary one scenario field over several values."""

    param: str
    values: Tuple[Any, ...]

    def __post_init__(self) -> None:
        if not self.param:
            raise ConfigError("sweep needs a param name")
        if not self.values:
            raise ConfigError("sweep needs at least one value")
        object.__setattr__(self, "values", tuple(self.values))


@dataclass(frozen=True)
class Scenario:
    """A complete, serialisable description of one run.

    The single spec every front-end consumes: ``repro run`` loads one
    from YAML/JSON, benchmarks and examples build one inline, and
    :func:`repro.api.runner.run_scenario` executes it regardless of
    origin.  Instances are immutable and hashable-by-content:
    :meth:`digest` is a canonical sha256 over :meth:`to_dict` and is
    stamped into every result's provenance, so a result can always be
    traced back to the exact spec that produced it.

    Which fields matter depends on ``kind``:

    - every kind: ``name``, ``scheme`` (except ``figure``), ``seed``,
      ``hardware`` (overrides for :data:`repro.config.DEFAULT_CORE`);
    - ``serving``: ``tenants``, ``target_requests``;
    - ``open_loop``: ``tenants``, ``arrival``, ``load``,
      ``duration_s``, ``drain``;
    - ``cluster``: ``churn``, ``hosts``/``cores_per_host`` (or
      ``pools``), ``arrival``, ``load``, ``duration_s``, the optional
      ``autoscaler`` control loop, the optional ``virtualization``
      control plane (VF budgets, hypercall cost), optional injected
      ``faults`` (host crashes, VF loss, hypercall spikes, burst
      storms), and the optional ``checkpoint`` block (journaled
      segment snapshots for ``repro run --resume``);
    - ``llm``: the ``llm`` block (tenants, token budgets, preemption),
      plus ``arrival``, ``load``, ``duration_s``, ``drain``;
    - ``figure``: ``figure`` (the experiment name) and ``params``.

    Any kind may carry an ``executor`` block choosing how its sweep (or
    a cluster's host-segment fan-out) is dispatched; results never
    depend on it.

    Example::

        sc = Scenario(
            name="demo", kind="open_loop", scheme="neu10",
            tenants=(ScenarioTenant(model="MNIST", batch=8),),
            load=0.8, duration_s=0.002,
        )
        sc == Scenario.from_yaml(sc.to_yaml())   # lossless round-trip

    Construction validates shape (positive durations, kind-appropriate
    blocks); :meth:`validate` additionally resolves every registry name
    (scheme, arrival kinds, models, figure, autoscaler policy) with
    did-you-mean errors, which is what ``run_scenario`` calls first.
    """

    name: str
    kind: str
    description: str = ""
    scheme: str = "neu10"
    tenants: Tuple[ScenarioTenant, ...] = ()
    arrival: str = "poisson"
    load: float = 0.8
    duration_s: float = 0.002
    target_requests: int = 4
    seed: int = DEFAULT_SEED
    drain: bool = False
    #: Overrides applied to :data:`repro.config.DEFAULT_CORE` fields.
    hardware: Mapping[str, Any] = field(default_factory=dict)
    hosts: int = 2
    cores_per_host: int = 1
    churn: Tuple[ScenarioChurn, ...] = ()
    #: Elastic host pools (cluster kind; empty = fixed ``hosts`` fleet).
    pools: Tuple[ScenarioPool, ...] = ()
    #: Closed-loop scaling policy (cluster kind; None = static cluster,
    #: bit-identical to pre-autoscaling runs).
    autoscaler: Optional[ScenarioAutoscaler] = None
    #: Virtualization control plane (cluster kind; None = default VF
    #: pools, free hypercalls, no control-plane metrics -- bit-identical
    #: to pre-virtualization runs).
    virtualization: Optional[ScenarioVirtualization] = None
    #: Injected failures (cluster kind; empty = the exact fault-free
    #: code path, bit-identical to releases without fault injection).
    faults: Tuple[ScenarioFault, ...] = ()
    #: Continuous-batching LLM serving block (llm kind only).
    llm: Optional[ScenarioLlm] = None
    #: Sweep fan-out backend (None = legacy in-process sweep path,
    #: bit-identical to pre-executor runs; results never depend on it).
    executor: Optional[ScenarioExecutor] = None
    #: Journaled segment checkpoints (cluster kind; None = no snapshots
    #: are written.  Persistence only: metrics never depend on it).
    checkpoint: Optional[ScenarioCheckpoint] = None
    #: Figure experiment name (kind == "figure").
    figure: Optional[str] = None
    #: Extra keyword parameters for the figure runner.
    params: Mapping[str, Any] = field(default_factory=dict)
    sweep: Optional[SweepSpec] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "tenants", tuple(self.tenants))
        object.__setattr__(self, "churn", tuple(self.churn))
        object.__setattr__(self, "pools", tuple(self.pools))
        object.__setattr__(self, "faults", tuple(self.faults))
        object.__setattr__(self, "hardware", dict(self.hardware))
        object.__setattr__(self, "params", dict(self.params))
        self._validate_shape()

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def _validate_shape(self) -> None:
        if not self.name:
            raise ConfigError("scenario needs a name")
        if self.kind not in SCENARIO_KINDS:
            raise ConfigError(
                f"unknown scenario kind {self.kind!r}; "
                f"known: {', '.join(SCENARIO_KINDS)}"
            )
        if self.kind in ("serving", "open_loop") and not self.tenants:
            raise ConfigError(
                f"{self.kind} scenario {self.name!r} needs at least one tenant"
            )
        if self.kind == "llm":
            if self.llm is None or not self.llm.tenants:
                raise ConfigError(
                    f"llm scenario {self.name!r} needs an 'llm' block "
                    "with at least one tenant"
                )
            if self.tenants:
                raise ConfigError(
                    f"llm scenario {self.name!r}: tenants go inside the "
                    "'llm' block, not the top-level 'tenants' list"
                )
        elif self.llm is not None:
            raise ConfigError(
                f"{self.kind} scenario {self.name!r}: "
                "'llm' only applies to kind: llm"
            )
        if self.kind == "cluster" and not self.churn:
            raise ConfigError(
                f"cluster scenario {self.name!r} needs churn events"
            )
        if self.kind == "figure" and not self.figure:
            raise ConfigError(
                f"figure scenario {self.name!r} needs a 'figure' name"
            )
        if self.load <= 0:
            raise ConfigError("load factor must be positive")
        if self.duration_s <= 0:
            raise ConfigError("duration must be positive")
        if self.target_requests < 1:
            raise ConfigError("target_requests must be positive")
        if self.hosts < 1 or self.cores_per_host < 1:
            raise ConfigError("cluster needs at least one host and core")
        if self.kind != "cluster" and (
            self.pools or self.autoscaler or self.virtualization
            or self.faults or self.checkpoint
        ):
            raise ConfigError(
                f"{self.kind} scenario {self.name!r}: 'pools', "
                "'autoscaler', 'virtualization', 'faults' and "
                "'checkpoint' only apply to kind: cluster"
            )
        pool_names = [p.name for p in self.pools]
        if len(set(pool_names)) != len(pool_names):
            raise ConfigError("host pool names must be unique")
        if self.virtualization is not None and self.virtualization.pool_num_vfs:
            if not self.pools:
                raise ConfigError(
                    f"scenario {self.name!r}: 'virtualization.pool_num_vfs' "
                    "needs explicit 'pools' to name"
                )
            unknown = set(self.virtualization.pool_num_vfs) - set(pool_names)
            if unknown:
                raise ConfigError(
                    f"virtualization names unknown pool(s) {sorted(unknown)}; "
                    f"known: {sorted(pool_names)}"
                )
        self.core()  # hardware overrides must name real config fields

    def validate(self) -> None:
        """Full validation including registry lookups (helpful errors)."""
        from repro.api import registries
        from repro.workloads.catalog import model_info

        if self.executor is not None:
            registries.EXECUTORS.get(self.executor.backend)
        if self.kind == "figure":
            from repro.api.figures import FIGURES

            FIGURES.get(self.figure)
            return
        registries.SCHEDULERS.get(self.scheme)
        if self.kind in ("open_loop", "cluster", "llm"):
            registries.ARRIVALS.get(self.arrival)
        if self.autoscaler is not None:
            registries.AUTOSCALERS.get(self.autoscaler.policy)
        if self.llm is not None:
            registries.PREEMPTION.get(self.llm.victim_policy)
        for tenant in self.tenants:
            model_info(tenant.model)
            if tenant.arrival is not None:
                registries.ARRIVALS.get(tenant.arrival)
        for event in self.churn:
            if event.model is not None:
                model_info(event.model)

    # ------------------------------------------------------------------
    # Derived objects
    # ------------------------------------------------------------------
    def core(self) -> NpuCoreConfig:
        """The hardware config with this scenario's overrides applied."""
        if not self.hardware:
            return DEFAULT_CORE
        known = {f.name for f in dataclasses.fields(NpuCoreConfig)}
        unknown = set(self.hardware) - known
        if unknown:
            raise ConfigError(
                f"unknown hardware key(s) {sorted(unknown)}; "
                f"known: {sorted(known)}"
            )
        return dataclasses.replace(DEFAULT_CORE, **dict(self.hardware))

    def digest(self) -> str:
        """Canonical content digest (provenance)."""
        return canonical_digest(self.to_dict())

    def replaced(self, **changes: Any) -> "Scenario":
        """A copy with top-level or dotted ``hardware.X`` overrides."""
        hw_changes = {
            k.split(".", 1)[1]: v
            for k, v in changes.items()
            if k.startswith("hardware.")
        }
        flat = {
            k: v for k, v in changes.items() if not k.startswith("hardware.")
        }
        if hw_changes:
            merged = dict(self.hardware)
            merged.update(hw_changes)
            flat["hardware"] = merged
        known = {f.name for f in dataclasses.fields(Scenario)}
        unknown = set(flat) - known
        if unknown:
            raise ConfigError(
                f"unknown scenario field(s) {sorted(unknown)}; "
                f"known: {sorted(known)}"
            )
        return dataclasses.replace(self, **flat)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        out = _nondefault_dict(self)
        # Required fields always appear, defaults or not.
        out["name"] = self.name
        out["kind"] = self.kind
        if self.tenants:
            out["tenants"] = [_nondefault_dict(t) | {"model": t.model}
                              for t in self.tenants]
        if self.churn:
            out["churn"] = [
                _nondefault_dict(e)
                | {"time_s": e.time_s, "action": e.action, "name": e.name}
                for e in self.churn
            ]
        if self.sweep is not None:
            out["sweep"] = {
                "param": self.sweep.param,
                "values": list(self.sweep.values),
            }
        if self.pools:
            out["pools"] = [_nondefault_dict(p) for p in self.pools]
        if self.autoscaler is not None:
            block: Dict[str, Any] = {"policy": self.autoscaler.policy}
            if self.autoscaler.interval_s is not None:
                block["interval_s"] = self.autoscaler.interval_s
            if self.autoscaler.params:
                block["params"] = dict(self.autoscaler.params)
            out["autoscaler"] = block
        if self.virtualization is not None:
            out["virtualization"] = _nondefault_dict(self.virtualization)
        if self.faults:
            out["faults"] = [
                _nondefault_dict(f) | {"kind": f.kind, "time_s": f.time_s}
                for f in self.faults
            ]
        if self.llm is not None:
            block = _nondefault_dict(self.llm)
            block["tenants"] = [
                _nondefault_dict(t) | {"name": t.name}
                for t in self.llm.tenants
            ]
            out["llm"] = block
        if self.executor is not None:
            out["executor"] = _nondefault_dict(self.executor) | {
                "backend": self.executor.backend
            }
        if self.checkpoint is not None:
            out["checkpoint"] = _nondefault_dict(self.checkpoint) | {
                "directory": self.checkpoint.directory
            }
        if self.hardware:
            out["hardware"] = dict(self.hardware)
        if self.params:
            out["params"] = dict(self.params)
        return out

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Scenario":
        if not isinstance(payload, Mapping):
            raise ConfigError(
                f"scenario must be a mapping, got {type(payload).__name__}"
            )
        data = dict(payload)
        tenants = tuple(
            _from_mapping(ScenarioTenant, t, "tenant")
            for t in data.pop("tenants", ())
        )
        churn = tuple(
            _from_mapping(ScenarioChurn, e, "churn event")
            for e in data.pop("churn", ())
        )
        sweep_raw = data.pop("sweep", None)
        sweep = (
            _from_mapping(SweepSpec, dict(sweep_raw), "sweep")
            if sweep_raw is not None
            else None
        )
        pools = tuple(
            _from_mapping(ScenarioPool, p, "host pool")
            for p in data.pop("pools", ())
        )
        autoscaler_raw = data.pop("autoscaler", None)
        autoscaler = (
            _from_mapping(
                ScenarioAutoscaler, dict(autoscaler_raw), "autoscaler"
            )
            if autoscaler_raw is not None
            else None
        )
        virtualization_raw = data.pop("virtualization", None)
        virtualization = (
            _from_mapping(
                ScenarioVirtualization, dict(virtualization_raw),
                "virtualization",
            )
            if virtualization_raw is not None
            else None
        )
        faults = tuple(
            _from_mapping(ScenarioFault, f, "fault")
            for f in data.pop("faults", ())
        )
        llm_raw = data.pop("llm", None)
        llm = None
        if llm_raw is not None:
            if not isinstance(llm_raw, Mapping):
                raise ConfigError(
                    f"llm block must be a mapping, got {type(llm_raw).__name__}"
                )
            llm_data = dict(llm_raw)
            llm_tenants = tuple(
                _from_mapping(ScenarioLlmTenant, t, "llm tenant")
                for t in llm_data.pop("tenants", ())
            )
            known_llm = {f.name for f in dataclasses.fields(ScenarioLlm)}
            unknown_llm = set(llm_data) - known_llm
            if unknown_llm:
                raise ConfigError(
                    f"unknown llm key(s) {sorted(unknown_llm)}; "
                    f"known: {sorted(known_llm)}"
                )
            llm = ScenarioLlm(tenants=llm_tenants, **llm_data)
        executor_raw = data.pop("executor", None)
        executor = (
            _from_mapping(ScenarioExecutor, dict(executor_raw), "executor")
            if executor_raw is not None
            else None
        )
        checkpoint_raw = data.pop("checkpoint", None)
        checkpoint = (
            _from_mapping(
                ScenarioCheckpoint, dict(checkpoint_raw), "checkpoint"
            )
            if checkpoint_raw is not None
            else None
        )
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigError(
                f"unknown scenario key(s) {sorted(unknown)}; "
                f"known: {sorted(known)}"
            )
        missing = {"name", "kind"} - set(data)
        if missing:
            raise ConfigError(f"scenario missing required key(s) {sorted(missing)}")
        return cls(
            tenants=tenants, churn=churn, sweep=sweep,
            pools=pools, autoscaler=autoscaler,
            virtualization=virtualization, faults=faults,
            llm=llm, executor=executor, checkpoint=checkpoint,
            **data,
        )

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def to_yaml(self) -> str:
        yaml = _require_yaml()
        return yaml.safe_dump(self.to_dict(), sort_keys=False)

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_yaml(cls, text: str) -> "Scenario":
        scenarios = parse_scenarios(text, fmt="yaml")
        if len(scenarios) != 1:
            raise ConfigError(
                f"expected exactly one scenario, found {len(scenarios)}"
            )
        return scenarios[0]


# ----------------------------------------------------------------------
# File loading
# ----------------------------------------------------------------------
def _payload_to_scenarios(payload: Any, source: str) -> List[Scenario]:
    if payload is None:
        return []
    if isinstance(payload, Mapping) and "scenarios" in payload:
        extra = set(payload) - {"scenarios"}
        if extra:
            raise ConfigError(
                f"{source}: 'scenarios' files cannot have extra keys {sorted(extra)}"
            )
        items = payload["scenarios"]
        if not isinstance(items, Sequence) or isinstance(items, (str, bytes)):
            raise ConfigError(f"{source}: 'scenarios' must be a list")
        return [Scenario.from_dict(item) for item in items]
    if isinstance(payload, Mapping):
        return [Scenario.from_dict(payload)]
    if isinstance(payload, Sequence) and not isinstance(payload, (str, bytes)):
        return [Scenario.from_dict(item) for item in payload]
    raise ConfigError(
        f"{source}: expected a scenario mapping or list, "
        f"got {type(payload).__name__}"
    )


def parse_scenarios(text: str, fmt: str = "yaml", source: str = "<string>") -> List[Scenario]:
    """Parse one or many scenarios from ``text`` (YAML or JSON)."""
    out: List[Scenario] = []
    if fmt == "json":
        out.extend(_payload_to_scenarios(json.loads(text), source))
    elif fmt == "yaml":
        yaml = _require_yaml()
        try:
            docs = list(yaml.safe_load_all(text))
        except yaml.YAMLError as exc:
            raise ConfigError(f"{source}: invalid YAML: {exc}") from exc
        for doc in docs:
            out.extend(_payload_to_scenarios(doc, source))
    else:
        raise ConfigError(f"unknown scenario format {fmt!r} (yaml or json)")
    if not out:
        raise ConfigError(f"{source}: no scenarios found")
    return out


def load_scenarios(path: Union[str, Path]) -> List[Scenario]:
    """Load every scenario in a ``.yaml``/``.yml``/``.json`` file."""
    path = Path(path)
    if not path.exists():
        raise ConfigError(f"scenario file not found: {path}")
    fmt = "json" if path.suffix.lower() == ".json" else "yaml"
    return parse_scenarios(path.read_text(encoding="utf-8"), fmt, str(path))


def load_scenario(path: Union[str, Path], name: Optional[str] = None) -> Scenario:
    """Load exactly one scenario; ``name`` selects from a multi-file."""
    scenarios = load_scenarios(path)
    if name is not None:
        for sc in scenarios:
            if sc.name == name:
                return sc
        raise ConfigError(
            f"no scenario named {name!r} in {path}; "
            f"found: {', '.join(s.name for s in scenarios)}"
        )
    if len(scenarios) != 1:
        raise ConfigError(
            f"{path} holds {len(scenarios)} scenarios; pick one by name "
            f"({', '.join(s.name for s in scenarios)})"
        )
    return scenarios[0]


def save_scenario(scenario: Scenario, path: Union[str, Path]) -> None:
    path = Path(path)
    if path.suffix.lower() == ".json":
        path.write_text(scenario.to_json() + "\n", encoding="utf-8")
    else:
        path.write_text(scenario.to_yaml(), encoding="utf-8")
