"""``repro.api`` -- the unified scenario layer.

One declarative, serialisable :class:`Scenario` spec describes any run
the repo models (closed-loop collocation, open-loop traffic, cluster
churn, paper figures); string-keyed registries make schedulers, arrival
processes, workloads and figure experiments pluggable; every run
returns the same structured :class:`RunResult`.

Typical use::

    from repro.api import Scenario, ScenarioTenant, run_scenario

    sc = Scenario(
        name="demo", kind="open_loop", scheme="neu10",
        tenants=(ScenarioTenant(model="MNIST", batch=8),
                 ScenarioTenant(model="DLRM", batch=8)),
        load=0.8, duration_s=0.002,
    )
    result = run_scenario(sc)
    print(result.to_json())

or, from a file::

    from repro.api import load_scenario, run_scenario
    result = run_scenario(load_scenario("examples/scenarios/smoke.yaml"))
"""

from repro.api.figures import FIGURES, FigureInfo, figure_names
from repro.api.registries import (
    ARRIVALS,
    AUTOSCALERS,
    SCHEDULERS,
    WORKLOADS,
    ArrivalInfo,
    AutoscalerInfo,
    SchedulerInfo,
    all_scheme_names,
    arrival_kind_names,
    autoscaler_names,
    default_scheme_names,
    make_autoscaler,
    make_scheduler,
    scheme_isa,
    scheme_isa_map,
    workload_names,
)
from repro.api.registry import Registry
from repro.api.result import (
    RESULT_SCHEMA_VERSION,
    RunResult,
    figure_result,
    validate_run_result,
)
from repro.api.runner import run_scenario, sweep_scenario, sweep_variants
from repro.api.scenario import (
    SCENARIO_KINDS,
    VIRTUALIZATION_FIELD_DOCS,
    Scenario,
    ScenarioAutoscaler,
    ScenarioChurn,
    ScenarioPool,
    ScenarioTenant,
    ScenarioVirtualization,
    SweepSpec,
    load_scenario,
    load_scenarios,
    parse_scenarios,
    save_scenario,
)

__all__ = [
    "ARRIVALS",
    "AUTOSCALERS",
    "ArrivalInfo",
    "AutoscalerInfo",
    "FIGURES",
    "FigureInfo",
    "RESULT_SCHEMA_VERSION",
    "Registry",
    "RunResult",
    "SCENARIO_KINDS",
    "SCHEDULERS",
    "Scenario",
    "ScenarioAutoscaler",
    "ScenarioChurn",
    "ScenarioPool",
    "ScenarioTenant",
    "ScenarioVirtualization",
    "SchedulerInfo",
    "SweepSpec",
    "VIRTUALIZATION_FIELD_DOCS",
    "WORKLOADS",
    "all_scheme_names",
    "arrival_kind_names",
    "autoscaler_names",
    "default_scheme_names",
    "figure_names",
    "figure_result",
    "load_scenario",
    "load_scenarios",
    "make_autoscaler",
    "make_scheduler",
    "parse_scenarios",
    "run_scenario",
    "save_scenario",
    "scheme_isa",
    "scheme_isa_map",
    "sweep_scenario",
    "sweep_variants",
    "validate_run_result",
    "workload_names",
]
