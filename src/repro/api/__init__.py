"""``repro.api`` -- the unified scenario layer.

One declarative, serialisable :class:`Scenario` spec describes any run
the repo models (closed-loop collocation, open-loop traffic, cluster
churn, continuous-batching LLM serving, paper figures); string-keyed
registries make schedulers, arrival processes, workloads, autoscalers,
preemption victim policies and figure experiments pluggable; every run
returns the same structured :class:`RunResult`.

Typical use::

    from repro.api import Scenario, ScenarioTenant, run_scenario

    sc = Scenario(
        name="demo", kind="open_loop", scheme="neu10",
        tenants=(ScenarioTenant(model="MNIST", batch=8),
                 ScenarioTenant(model="DLRM", batch=8)),
        load=0.8, duration_s=0.002,
    )
    result = run_scenario(sc)
    print(result.to_json())

or, from a file::

    from repro.api import load_scenario, run_scenario
    result = run_scenario(load_scenario("examples/scenarios/smoke.yaml"))
"""

from repro.api.figures import FIGURES, FigureInfo, figure_names
from repro.api.registries import (
    ARRIVALS,
    AUTOSCALERS,
    EXECUTORS,
    PREEMPTION,
    SCHEDULERS,
    WORKLOADS,
    ArrivalInfo,
    AutoscalerInfo,
    ExecutorInfo,
    PreemptionInfo,
    SchedulerInfo,
    all_scheme_names,
    arrival_kind_names,
    autoscaler_names,
    default_scheme_names,
    executor_names,
    make_autoscaler,
    make_executor,
    make_scheduler,
    make_victim_policy,
    scheme_isa,
    scheme_isa_map,
    victim_policy_names,
    workload_names,
)
from repro.api.registry import Registry
from repro.api.result import (
    RESULT_SCHEMA_VERSION,
    RunResult,
    figure_result,
    validate_run_result,
)
from repro.api.runner import (
    SweepReport,
    cluster_inputs,
    run_scenario,
    sweep_scenario,
    sweep_scenario_report,
    sweep_variants,
)
from repro.api.scenario import (
    CHECKPOINT_FIELD_DOCS,
    EXECUTOR_FIELD_DOCS,
    FAULT_FIELD_DOCS,
    LLM_FIELD_DOCS,
    SCENARIO_KINDS,
    VIRTUALIZATION_FIELD_DOCS,
    Scenario,
    ScenarioAutoscaler,
    ScenarioCheckpoint,
    ScenarioChurn,
    ScenarioExecutor,
    ScenarioFault,
    ScenarioLlm,
    ScenarioLlmTenant,
    ScenarioPool,
    ScenarioTenant,
    ScenarioVirtualization,
    SweepSpec,
    load_scenario,
    load_scenarios,
    parse_scenarios,
    save_scenario,
)

__all__ = [
    "ARRIVALS",
    "AUTOSCALERS",
    "ArrivalInfo",
    "AutoscalerInfo",
    "CHECKPOINT_FIELD_DOCS",
    "EXECUTORS",
    "EXECUTOR_FIELD_DOCS",
    "ExecutorInfo",
    "FAULT_FIELD_DOCS",
    "FIGURES",
    "FigureInfo",
    "LLM_FIELD_DOCS",
    "PREEMPTION",
    "PreemptionInfo",
    "RESULT_SCHEMA_VERSION",
    "Registry",
    "RunResult",
    "SCENARIO_KINDS",
    "SCHEDULERS",
    "Scenario",
    "ScenarioAutoscaler",
    "ScenarioCheckpoint",
    "ScenarioChurn",
    "ScenarioExecutor",
    "ScenarioFault",
    "ScenarioLlm",
    "ScenarioLlmTenant",
    "ScenarioPool",
    "ScenarioTenant",
    "ScenarioVirtualization",
    "SchedulerInfo",
    "SweepReport",
    "SweepSpec",
    "VIRTUALIZATION_FIELD_DOCS",
    "WORKLOADS",
    "all_scheme_names",
    "arrival_kind_names",
    "autoscaler_names",
    "cluster_inputs",
    "default_scheme_names",
    "executor_names",
    "figure_names",
    "figure_result",
    "load_scenario",
    "load_scenarios",
    "make_autoscaler",
    "make_executor",
    "make_scheduler",
    "make_victim_policy",
    "parse_scenarios",
    "run_scenario",
    "save_scenario",
    "scheme_isa",
    "scheme_isa_map",
    "sweep_scenario",
    "sweep_scenario_report",
    "sweep_variants",
    "validate_run_result",
    "victim_policy_names",
    "workload_names",
]
