"""Registry of paper-figure experiments.

Each entry binds one experiment module's two faces:

- ``run_result()`` -- compute and return the structured
  :class:`repro.api.result.RunResult` (what ``--json`` and the scenario
  layer consume);
- ``render()``     -- the human-readable report the legacy CLI printed
  (each experiment module's ``main``).

The registry is what ``repro fig``, ``repro list`` and ``kind: figure``
scenarios dispatch through, so adding an experiment is one ``add()``
call -- no CLI edit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.api.registry import Registry
from repro.api.result import RunResult


@dataclass(frozen=True)
class FigureInfo:
    """Registry entry for one figure/table experiment."""

    name: str
    run_result: Callable[..., RunResult]
    render: Optional[Callable[[], None]] = None
    description: str = ""


def _load_figures(reg: Registry) -> None:
    from repro.experiments import (
        ablations,
        fig02_demand,
        fig04_intensity,
        fig05_utilization,
        fig06_ve_idle,
        fig07_hbm,
        fig12_allocator,
        fig16_neuisa_overhead,
        fig19_22_serving,
        fig23_harvest,
        fig24_assignment,
        fig25_scaling,
        fig26_bandwidth,
        fig27_llm,
        hwcost,
    )

    entries = (
        ("fig02", fig02_demand, "ME/VE demand of DNN workloads over time"),
        ("fig04", fig04_intensity, "ME/VE intensity ratio per workload"),
        ("fig05", fig05_utilization, "solo ME/VE utilization traces"),
        ("fig06", fig06_ve_idle, "VE idleness under VLIW vs NeuISA"),
        ("fig07", fig07_hbm, "HBM bandwidth utilization"),
        ("fig12", fig12_allocator, "allocator-selected vs best configs"),
        ("fig16", fig16_neuisa_overhead, "NeuISA overhead vs VLIW"),
        ("fig19", fig19_22_serving, "multi-tenant serving comparison"),
        ("fig23", fig23_harvest, "harvesting benefit and overhead"),
        ("fig24", fig24_assignment, "assigned engines over time"),
        ("fig25", fig25_scaling, "throughput scaling with engine count"),
        ("fig26", fig26_bandwidth, "speedup vs HBM bandwidth"),
        ("fig27", fig27_llm, "LLaMA2-13B collocation"),
        ("hwcost", hwcost, "uTOp scheduler hardware cost"),
        ("ablations", ablations, "scheduler design ablations"),
    )
    for name, module, description in entries:
        reg.add(
            name,
            FigureInfo(
                name=name,
                run_result=module.run_result,
                render=module.main,
                description=description,
            ),
        )


FIGURES = Registry("figure experiment", loader=_load_figures)


def figure_names() -> tuple:
    return FIGURES.names()
