"""The uniform structured result every scenario run returns.

A :class:`RunResult` is what used to be a wall of ``print()`` output:
one JSON-serialisable record with three sections --

- ``metrics``    -- the numbers the run produced (per-tenant tables,
  utilizations, attainment, headline aggregates...);
- ``metadata``   -- what was run (scheme, load, duration, figure
  parameters);
- ``provenance`` -- what would be needed to reproduce it (seed,
  canonical scenario digest, library version, fast-path flag).

``validate_run_result`` is the schema check CI's ``cli-smoke`` job and
the tests apply to ``repro run --json`` output.
"""

from __future__ import annotations

import hashlib
import json
import sys
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Mapping, Optional

from repro.errors import ConfigError

#: Bump when the RunResult envelope changes shape.
RESULT_SCHEMA_VERSION = 1


def _json_default(obj: Any) -> Any:
    if isinstance(obj, tuple):
        return list(obj)
    raise TypeError(f"not JSON-serialisable: {type(obj).__name__}")


def canonical_digest(payload: Mapping[str, Any]) -> str:
    """Stable sha256 over a canonical JSON encoding of ``payload``."""
    encoded = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=_json_default
    ).encode("utf-8")
    return hashlib.sha256(encoded).hexdigest()


def base_provenance(
    seed: Optional[int] = None,
    scenario_digest: Optional[str] = None,
) -> Dict[str, Any]:
    """The provenance block every runner stamps onto its result."""
    import repro
    from repro.sim.engine import _fast_path_default

    prov: Dict[str, Any] = {
        "repro_version": getattr(repro, "__version__", "unknown"),
        "python": "%d.%d" % sys.version_info[:2],
        "fast_path": _fast_path_default(),
    }
    if seed is not None:
        prov["seed"] = seed
    if scenario_digest is not None:
        prov["scenario_digest"] = scenario_digest
    return prov


@dataclass
class RunResult:
    """Uniform outcome of one scenario / experiment / benchmark run.

    Three sections with distinct contracts:

    - ``metrics``    -- the numbers the run *produced* (per-tenant
      tables, utilizations, attainment, ``simulated_cycles``).  Keys
      vary by ``kind``; optional features (e.g. autoscaling) only add
      keys when enabled, so baseline outputs stay byte-stable.
    - ``metadata``   -- what was *asked for* (scheme, load, duration,
      figure parameters) in human-readable form.
    - ``provenance`` -- what reproduces it: ``seed``, the canonical
      ``scenario_digest``, ``repro_version``, the ``fast_path`` flag.

    ``to_dict``/``to_json`` emit a plain-JSON envelope (bump
    :data:`RESULT_SCHEMA_VERSION` when its shape changes);
    :func:`validate_run_result` checks it without third-party
    dependencies, and :meth:`from_dict` validates on the way in, so a
    payload that round-trips is known well-formed.  Example::

        result = run_scenario(sc)
        payload = json.loads(result.to_json())
        validate_run_result(payload)          # raises ConfigError if bad
        RunResult.from_dict(payload)          # inverse of to_dict
    """

    scenario: str
    kind: str
    scheme: Optional[str] = None
    metrics: Dict[str, Any] = field(default_factory=dict)
    metadata: Dict[str, Any] = field(default_factory=dict)
    provenance: Dict[str, Any] = field(default_factory=dict)
    schema_version: int = RESULT_SCHEMA_VERSION

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(
            self.to_dict(), indent=indent, sort_keys=False,
            default=_json_default,
        )

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RunResult":
        validate_run_result(payload)
        return cls(
            scenario=payload["scenario"],
            kind=payload["kind"],
            scheme=payload.get("scheme"),
            metrics=dict(payload["metrics"]),
            metadata=dict(payload["metadata"]),
            provenance=dict(payload["provenance"]),
            schema_version=payload["schema_version"],
        )


def figure_result(
    figure: str,
    metrics: Dict[str, Any],
    metadata: Optional[Dict[str, Any]] = None,
) -> RunResult:
    """Wrap one figure experiment's structured metrics as a RunResult."""
    return RunResult(
        scenario=figure,
        kind="figure",
        scheme=None,
        metrics=metrics,
        metadata=dict(metadata or {}),
        provenance=base_provenance(),
    )


def validate_run_result(payload: Mapping[str, Any]) -> None:
    """Raise :class:`ConfigError` unless ``payload`` is a valid RunResult.

    This is deliberately dependency-free (no jsonschema) so the CI smoke
    job can run it with nothing but the library on the path.
    """
    if not isinstance(payload, Mapping):
        raise ConfigError("RunResult payload must be a JSON object")

    def fail(msg: str) -> None:
        raise ConfigError(f"invalid RunResult: {msg}")

    version = payload.get("schema_version")
    if not isinstance(version, int):
        fail("missing integer 'schema_version'")
    if version != RESULT_SCHEMA_VERSION:
        fail(
            f"schema_version {version} unsupported "
            f"(expected {RESULT_SCHEMA_VERSION})"
        )
    for key in ("scenario", "kind"):
        if not isinstance(payload.get(key), str) or not payload.get(key):
            fail(f"missing non-empty string {key!r}")
    scheme = payload.get("scheme")
    if scheme is not None and not isinstance(scheme, str):
        fail("'scheme' must be a string or null")
    for key in ("metrics", "metadata", "provenance"):
        section = payload.get(key)
        if not isinstance(section, Mapping):
            fail(f"missing object section {key!r}")
        for sub in section:
            if not isinstance(sub, str):
                fail(f"section {key!r} has a non-string key: {sub!r}")
    prov = payload["provenance"]
    if "repro_version" not in prov:
        fail("provenance must record 'repro_version'")
    extra = set(payload) - {
        "scenario", "kind", "scheme", "metrics", "metadata",
        "provenance", "schema_version",
    }
    if extra:
        fail(f"unexpected top-level keys: {sorted(extra)}")
