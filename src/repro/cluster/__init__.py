"""Cluster-level vNPU orchestration.

The paper scopes itself to one host and notes: "At scale, Neu10 can be
integrated with a cluster-wise VM/container orchestration framework such
as KubeVirt/Kubernetes to decide which VM should be placed on what
machine.  Developing advanced vNPU/VM collocation policies is orthogonal
to our work" (SectionIII-C).  This package builds that orthogonal layer:

- :mod:`repro.cluster.host` -- a host = one hypervisor over a set of
  physical cores, with capacity accounting;
- :mod:`repro.cluster.placement` -- placement policies: first-fit,
  least-loaded, and a contention-aware policy that uses compile-time
  m/v profiles to collocate complementary workloads (ME-heavy with
  VE-heavy), following the paper's SectionII insight;
- :mod:`repro.cluster.orchestrator` -- admission, placement, release,
  and elastic membership (add/remove hosts, tenant migration);
- :mod:`repro.cluster.autoscale` -- closed-loop scaling policies over
  per-segment cluster observations (threshold, target-utilization,
  SLO-burn-rate) plus the host-pool specs they scale within;
- :mod:`repro.cluster.virt` -- virtualization control-plane knobs
  (per-pool SR-IOV VF budgets, hypercall latency) and the telemetry
  summary the cluster serving driver reports.
"""

from repro.cluster.autoscale import (
    Autoscaler,
    AutoscaleEvent,
    HostPoolSpec,
    ScalingAction,
    SegmentObservation,
    SloBurnRateAutoscaler,
    StaticAutoscaler,
    TargetUtilizationAutoscaler,
    ThresholdAutoscaler,
)
from repro.cluster.host import Host
from repro.cluster.orchestrator import ClusterOrchestrator, PlacementRequest
from repro.cluster.placement import (
    ContentionAwarePolicy,
    FirstFitPolicy,
    LeastLoadedPolicy,
    PlacementPolicy,
)
from repro.cluster.virt import VirtualizationSpec, VirtualizationSummary

__all__ = [
    "Autoscaler",
    "AutoscaleEvent",
    "ClusterOrchestrator",
    "ContentionAwarePolicy",
    "FirstFitPolicy",
    "Host",
    "HostPoolSpec",
    "LeastLoadedPolicy",
    "PlacementPolicy",
    "PlacementRequest",
    "ScalingAction",
    "SegmentObservation",
    "SloBurnRateAutoscaler",
    "StaticAutoscaler",
    "TargetUtilizationAutoscaler",
    "ThresholdAutoscaler",
    "VirtualizationSpec",
    "VirtualizationSummary",
]
