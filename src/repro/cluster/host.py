"""A cluster host: one machine with NPU cores behind a hypervisor.

Placement goes through the real guest-side control plane: every tenant
gets a :class:`~repro.runtime.vm.GuestVm` (host-physical stride from the
hypervisor's own address space) and a
:class:`~repro.runtime.driver.VnpuDriver`, whose ``open``/``close``
issue the actual create/destroy hypercalls, occupy an SR-IOV virtual
function, and register the DMA buffer with the IOMMU.  A host therefore
admits a tenant only while it has both free engines *and* a free VF.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.config import NpuCoreConfig
from repro.core.mapper import MappingMode
from repro.errors import AllocationError
from repro.runtime.driver import VnpuDriver
from repro.runtime.hypervisor import Hypervisor, VnpuHandle


@dataclass
class HostedVnpu:
    """Book-keeping for a vNPU placed on this host."""

    handle: VnpuHandle
    owner: str
    #: Compile-time ME active ratio of the owner's workload (None when
    #: the tenant did not provide a profile).
    m: Optional[float] = None
    v: Optional[float] = None
    #: The guest driver bound to this vNPU (owns the VM and DMA buffer).
    driver: Optional[VnpuDriver] = None


class Host:
    """One machine in the cluster."""

    def __init__(
        self,
        name: str,
        cores: List[NpuCoreConfig],
        mode: MappingMode = MappingMode.SPATIAL,
        num_vfs: int = 16,
    ) -> None:
        if not cores:
            raise AllocationError(f"host {name!r} needs at least one core")
        self.name = name
        self.cores = list(cores)
        self.hypervisor = Hypervisor(cores, mode=mode, num_vfs=num_vfs)
        self.resident: Dict[int, HostedVnpu] = {}

    # ------------------------------------------------------------------
    # Capacity
    # ------------------------------------------------------------------
    @property
    def total_mes(self) -> int:
        return sum(c.num_mes for c in self.cores)

    @property
    def total_ves(self) -> int:
        return sum(c.num_ves for c in self.cores)

    @property
    def committed_mes(self) -> int:
        return sum(
            h.handle.config.num_mes_per_core * h.handle.config.total_cores
            for h in self.resident.values()
        )

    @property
    def committed_ves(self) -> int:
        return sum(
            h.handle.config.num_ves_per_core * h.handle.config.total_cores
            for h in self.resident.values()
        )

    @property
    def load(self) -> float:
        denom = self.total_mes + self.total_ves
        if denom == 0:
            return 1.0
        return (self.committed_mes + self.committed_ves) / denom

    @property
    def num_vfs(self) -> int:
        """SR-IOV virtual-function pool size of this host."""
        return self.hypervisor.sriov.num_vfs

    @property
    def free_vfs(self) -> int:
        return self.hypervisor.sriov.num_vfs - self.hypervisor.sriov.in_use

    def fits_engines(self, num_mes: int, num_ves: int) -> bool:
        """Engine capacity alone (ignores the VF pool)."""
        return (
            self.committed_mes + num_mes <= self.total_mes
            and self.committed_ves + num_ves <= self.total_ves
        )

    def fits(self, num_mes: int, num_ves: int) -> bool:
        """Admissible: free engines *and* a free virtual function."""
        return self.fits_engines(num_mes, num_ves) and self.free_vfs > 0

    # ------------------------------------------------------------------
    # Profile mix (for contention-aware placement)
    # ------------------------------------------------------------------
    def mean_me_pressure(self) -> float:
        """Average m of resident workloads (0.5 when unknown/empty)."""
        values = [h.m for h in self.resident.values() if h.m is not None]
        if not values:
            return 0.5
        return sum(values) / len(values)

    # ------------------------------------------------------------------
    # Placement plumbing (called by the orchestrator)
    # ------------------------------------------------------------------
    def place(
        self,
        config,
        owner: str,
        m: Optional[float] = None,
        v: Optional[float] = None,
        priority: float = 1.0,
    ) -> VnpuHandle:
        vm = self.hypervisor.create_vm(owner)
        driver = VnpuDriver(vm, self.hypervisor)
        handle = driver.open(config, priority=priority)
        self.resident[handle.vnpu_id] = HostedVnpu(
            handle=handle, owner=owner, m=m, v=v, driver=driver
        )
        return handle

    def release(self, vnpu_id: int) -> None:
        hosted = self.resident.get(vnpu_id)
        if hosted is None:
            raise AllocationError(
                f"host {self.name!r} does not host vNPU {vnpu_id}"
            )
        if hosted.driver is not None:
            hosted.driver.close()
        else:  # pragma: no cover - placements always carry a driver
            self.hypervisor.hypercall_destroy(vnpu_id)
        del self.resident[vnpu_id]
