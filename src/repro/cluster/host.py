"""A cluster host: one machine with NPU cores behind a hypervisor."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.config import NpuCoreConfig
from repro.core.mapper import MappingMode
from repro.errors import AllocationError
from repro.runtime.hypervisor import Hypervisor, VnpuHandle


@dataclass
class HostedVnpu:
    """Book-keeping for a vNPU placed on this host."""

    handle: VnpuHandle
    owner: str
    #: Compile-time ME active ratio of the owner's workload (None when
    #: the tenant did not provide a profile).
    m: Optional[float] = None
    v: Optional[float] = None


class Host:
    """One machine in the cluster."""

    def __init__(
        self,
        name: str,
        cores: List[NpuCoreConfig],
        mode: MappingMode = MappingMode.SPATIAL,
    ) -> None:
        if not cores:
            raise AllocationError(f"host {name!r} needs at least one core")
        self.name = name
        self.cores = list(cores)
        self.hypervisor = Hypervisor(cores, mode=mode)
        self.resident: Dict[int, HostedVnpu] = {}

    # ------------------------------------------------------------------
    # Capacity
    # ------------------------------------------------------------------
    @property
    def total_mes(self) -> int:
        return sum(c.num_mes for c in self.cores)

    @property
    def total_ves(self) -> int:
        return sum(c.num_ves for c in self.cores)

    @property
    def committed_mes(self) -> int:
        return sum(
            h.handle.config.num_mes_per_core * h.handle.config.total_cores
            for h in self.resident.values()
        )

    @property
    def committed_ves(self) -> int:
        return sum(
            h.handle.config.num_ves_per_core * h.handle.config.total_cores
            for h in self.resident.values()
        )

    @property
    def load(self) -> float:
        denom = self.total_mes + self.total_ves
        if denom == 0:
            return 1.0
        return (self.committed_mes + self.committed_ves) / denom

    def fits(self, num_mes: int, num_ves: int) -> bool:
        return (
            self.committed_mes + num_mes <= self.total_mes
            and self.committed_ves + num_ves <= self.total_ves
        )

    # ------------------------------------------------------------------
    # Profile mix (for contention-aware placement)
    # ------------------------------------------------------------------
    def mean_me_pressure(self) -> float:
        """Average m of resident workloads (0.5 when unknown/empty)."""
        values = [h.m for h in self.resident.values() if h.m is not None]
        if not values:
            return 0.5
        return sum(values) / len(values)

    # ------------------------------------------------------------------
    # Placement plumbing (called by the orchestrator)
    # ------------------------------------------------------------------
    def place(
        self,
        config,
        owner: str,
        m: Optional[float] = None,
        v: Optional[float] = None,
        priority: float = 1.0,
    ) -> VnpuHandle:
        handle = self.hypervisor.hypercall_create(
            config, owner=owner, priority=priority
        )
        self.resident[handle.vnpu_id] = HostedVnpu(
            handle=handle, owner=owner, m=m, v=v
        )
        return handle

    def release(self, vnpu_id: int) -> None:
        if vnpu_id not in self.resident:
            raise AllocationError(
                f"host {self.name!r} does not host vNPU {vnpu_id}"
            )
        self.hypervisor.hypercall_destroy(vnpu_id)
        del self.resident[vnpu_id]
