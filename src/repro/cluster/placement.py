"""Cluster placement policies.

``choose`` returns the host a request should land on, or ``None`` when
no host can take it.  Policies only *rank*; feasibility (``fits``) is
checked uniformly here so every policy admits iff some host has room.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.host import Host
    from repro.cluster.orchestrator import PlacementRequest


class PlacementPolicy:
    """Base class: feasibility filter + policy-specific ranking."""

    name = "base"

    def choose(
        self, hosts: List["Host"], request: "PlacementRequest"
    ) -> Optional["Host"]:
        feasible = [
            h for h in hosts if h.fits(request.num_mes, request.num_ves)
        ]
        if not feasible:
            return None
        return self.rank(feasible, request)

    def rank(
        self, feasible: List["Host"], request: "PlacementRequest"
    ) -> "Host":
        raise NotImplementedError


class FirstFitPolicy(PlacementPolicy):
    """Kubernetes-default-like: first host with room (stable ordering).

    Dense packing: frees whole hosts for large future requests, at the
    cost of more intra-host contention.
    """

    name = "first-fit"

    def rank(self, feasible, request):
        return feasible[0]


class LeastLoadedPolicy(PlacementPolicy):
    """Spread load: host with the lowest committed-EU fraction."""

    name = "least-loaded"

    def rank(self, feasible, request):
        return min(feasible, key=lambda h: (h.load, h.name))


class ContentionAwarePolicy(PlacementPolicy):
    """Collocate complementary workloads using compile-time profiles.

    The paper's SectionII insight: an ME-heavy workload wastes VEs and
    vice versa, so pairing opposite profiles maximises what harvesting
    can recover.  Rank hosts by how far the host's mean ME-pressure
    moves toward 0.5 (balanced) after adding this workload; fall back to
    least-loaded when the request carries no profile.
    """

    name = "contention-aware"

    def rank(self, feasible, request):
        if request.m is None:
            return min(feasible, key=lambda h: (h.load, h.name))

        def balance_after(host: "Host") -> float:
            current = host.mean_me_pressure()
            count = len(host.resident)
            new_mean = (current * count + request.m) / (count + 1)
            return abs(new_mean - 0.5)

        return min(feasible, key=lambda h: (balance_after(h), h.load, h.name))
