"""Virtualization control-plane configuration and telemetry.

The cluster serving simulator always places tenants through each host's
:class:`~repro.runtime.hypervisor.Hypervisor` (the paper's SectionIII-F
control plane: SR-IOV VFs, IOMMU windows, the three hypercalls).  A
:class:`VirtualizationSpec` makes that control plane *bind*: it sizes
the per-host SR-IOV VF pools (optionally per host pool), attaches a
modelled latency to every hypercall, and turns on the telemetry the
driver aggregates into a :class:`VirtualizationSummary` -- hypercall
counts by type, VF-occupancy timelines, IOMMU mapping counts, VF
exhaustion as a first-class admission-rejection cause, and the total
onboarding delay charged to tenants.

With no spec configured (the default), hosts keep their default VF
pools, hypercalls are free, and results are bit-identical to releases
that predate this module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.errors import ConfigError

#: Rejection causes recorded by the orchestrator.
REJECT_CAPACITY = "capacity"
REJECT_VF_EXHAUSTED = "vf-exhausted"
REJECT_HYPERCALL = "hypercall-rejected"

#: Injectable fault kinds (the ``faults:`` block of cluster scenarios).
FAULT_HOST_CRASH = "host-crash"
FAULT_VF_LOSS = "vf-loss"
FAULT_HYPERCALL_SPIKE = "hypercall-spike"
FAULT_BURST_STORM = "burst-storm"
FAULT_KINDS = (
    FAULT_HOST_CRASH,
    FAULT_VF_LOSS,
    FAULT_HYPERCALL_SPIKE,
    FAULT_BURST_STORM,
)
#: Kinds that act over a window rather than at an instant.
_WINDOW_FAULTS = (FAULT_HYPERCALL_SPIKE, FAULT_BURST_STORM)


@dataclass(frozen=True)
class FaultSpec:
    """One injected failure of a cluster serving run.

    Point faults fire at ``time_s`` (a segment boundary is cut there):

    - ``host-crash``: the named (or most-loaded) live host disappears;
      residents are re-placed through the placement policy, tenants that
      fit nowhere are evicted, and the host never comes back (the
      autoscaler cannot re-activate it).
    - ``vf-loss``: ``count`` free SR-IOV virtual functions vanish from
      the named (or most-free) live host, shrinking its admission
      capacity for the rest of the run.

    Window faults hold from ``time_s`` for ``duration_s`` seconds:

    - ``hypercall-spike``: control-plane latency is multiplied by
      ``factor`` for admissions and migrations inside the window (binds
      only when a :class:`VirtualizationSpec` prices hypercalls).
    - ``burst-storm``: every tenant's offered load is multiplied by
      ``factor`` for segments inside the window.
    """

    kind: str
    time_s: float
    duration_s: float = 0.0
    factor: float = 4.0
    count: int = 1
    host: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigError(
                f"unknown fault kind {self.kind!r}; "
                f"known: {', '.join(FAULT_KINDS)}"
            )
        if self.time_s < 0:
            raise ConfigError("faults cannot fire before t=0")
        if self.kind in _WINDOW_FAULTS:
            if self.duration_s <= 0:
                raise ConfigError(
                    f"{self.kind} fault needs a positive duration_s"
                )
        elif self.duration_s != 0.0:
            raise ConfigError(
                f"{self.kind} is a point fault; duration_s must be 0"
            )
        if self.factor <= 0:
            raise ConfigError("fault factor must be positive")
        if self.count < 1:
            raise ConfigError("fault count must be at least 1")

    @property
    def end_s(self) -> float:
        return self.time_s + self.duration_s

    def covers(self, t: float) -> bool:
        """Whether the fault's window is active at time ``t``."""
        return self.time_s <= t < self.end_s


def remove_free_vfs(host, count: int) -> int:
    """Shrink ``host``'s SR-IOV pool by up to ``count`` *free* VFs.

    In-use functions are never revoked (the tenant holding one keeps
    running); the pool capacity drops, so future admissions see fewer
    slots.  Returns how many VFs were actually removed.
    """
    sriov = host.hypervisor.sriov
    # The pool cannot shrink past the highest VF index currently handed
    # out (releases leave holes; a lower capacity would let the registry
    # re-issue an index that is still live), nor below one VF (the
    # registry invariant even on an idle host).
    max_index = max(sriov._vfs.keys(), default=-1)
    floor = max(sriov.in_use, max_index + 1, 1)
    removable = min(count, sriov.num_vfs - floor)
    if removable <= 0:
        return 0
    sriov.num_vfs -= removable
    return removable


@dataclass(frozen=True)
class VirtualizationSpec:
    """Control-plane knobs for a cluster serving run.

    ``num_vfs`` sizes every host's SR-IOV VF pool;
    ``pool_num_vfs`` overrides it for named host pools.
    ``hypercall_cost_s`` is the modelled control-plane latency of one
    hypercall: tenant onboarding (one ``create``) and migration (one
    ``destroy`` + one ``create``) hold the tenant's arrivals back by
    the corresponding time.
    """

    num_vfs: int = 16
    pool_num_vfs: Mapping[str, int] = field(default_factory=dict)
    hypercall_cost_s: float = 0.0

    def __post_init__(self) -> None:
        if self.num_vfs < 1:
            raise ConfigError("virtualization needs at least one VF per host")
        object.__setattr__(self, "pool_num_vfs", dict(self.pool_num_vfs))
        for pool, vfs in self.pool_num_vfs.items():
            if vfs < 1:
                raise ConfigError(
                    f"pool {pool!r}: num_vfs must be positive, got {vfs}"
                )
        if self.hypercall_cost_s < 0:
            raise ConfigError("hypercall cost cannot be negative")

    def vfs_for(self, pool: str) -> int:
        """VF pool size for hosts of ``pool``."""
        return self.pool_num_vfs.get(pool, self.num_vfs)


@dataclass
class VirtualizationSummary:
    """What the control plane did over one cluster serving run."""

    #: Hypercall totals by type over every host that ever existed.
    hypercalls: Dict[str, int]
    #: ``(segment start time, VFs in use, VF capacity)`` over the run's
    #: *active* hosts, one entry per simulated segment.
    vf_occupancy_timeline: List[Tuple[float, int, int]]
    peak_vf_in_use: int
    #: Admission attempts turned away because every EU-feasible host had
    #: an empty VF pool (counted per request, matching ``rejected``).
    vf_exhaustion_rejections: int
    #: Rejected tenant name -> last rejection cause (see ``REJECT_*``).
    rejection_causes: Dict[str, str]
    #: Cumulative IOMMU activity (segment windows attached, DMA buffers
    #: registered) and what is still mapped at the end of the run.
    iommu_windows_attached: int
    iommu_dma_registrations: int
    final_iommu_mappings: int
    final_vf_in_use: int
    #: Total simulated seconds of tenant serving time consumed by
    #: hypercall latency (admissions and migrations).
    onboarding_delay_s: float
    hypercall_cost_s: float

    @property
    def hypercall_total(self) -> int:
        return sum(self.hypercalls.values())

    def to_dict(self) -> Dict[str, Any]:
        return {
            "hypercalls": dict(self.hypercalls),
            "hypercall_total": self.hypercall_total,
            "vf_occupancy_timeline": [
                [t, used, cap] for t, used, cap in self.vf_occupancy_timeline
            ],
            "peak_vf_in_use": self.peak_vf_in_use,
            "vf_exhaustion_rejections": self.vf_exhaustion_rejections,
            "rejection_causes": dict(self.rejection_causes),
            "iommu_windows_attached": self.iommu_windows_attached,
            "iommu_dma_registrations": self.iommu_dma_registrations,
            "final_iommu_mappings": self.final_iommu_mappings,
            "final_vf_in_use": self.final_vf_in_use,
            "onboarding_delay_s": self.onboarding_delay_s,
            "hypercall_cost_s": self.hypercall_cost_s,
        }
