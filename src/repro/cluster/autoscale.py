"""Elastic autoscaling for the cluster-scale serving simulator.

The churn driver (:mod:`repro.traffic.cluster_sim`) cuts the timeline at
tenant arrive/depart events and simulates every host exactly within each
stable segment.  This module closes the control loop over those
segments: after each one, the driver hands the controller a
:class:`SegmentObservation` (SLO attainment, goodput, ME/VE utilization,
rejections, live host count) and the controller answers with
:class:`ScalingAction` s -- activate hosts from a pool, or drain a host
and migrate its tenants away -- which the driver applies at the segment
boundary, alongside any scripted churn.

Everything here is deterministic: a policy is a pure function of the
observation stream plus its constructor parameters, hosts are activated
and drained in a fixed order, and migrations re-place tenants through
the same :class:`~repro.cluster.placement.PlacementPolicy` the
orchestrator already uses.  Two runs of the same scenario therefore
produce bit-identical action logs and metrics, for any
``parallel_map`` worker count.

Policies are registered by name in
:data:`repro.api.registries.AUTOSCALERS`; a scenario file enables one
declaratively::

    kind: cluster
    autoscaler:
      policy: slo-burn-rate
      interval_s: 0.0005
      params: {slo_target: 0.9}
    pools:
      - {name: default, min_hosts: 1, max_hosts: 4}

Third-party controllers subclass :class:`Autoscaler` and plug in with
``AUTOSCALERS.add("my-policy", AutoscalerInfo(...))`` -- no driver or
CLI edits.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.errors import ConfigError

ACTION_ADD = "add"
ACTION_DRAIN = "drain"
ACTION_REBALANCE = "rebalance"


@dataclass(frozen=True)
class HostPoolSpec:
    """One homogeneous group of hosts the controller can scale within.

    A pool owns ``max_hosts`` identical machines (each with
    ``cores_per_host`` NPU cores of the scenario's core config);
    ``initial_hosts`` of them are live at t=0 and the controller may
    move the live count anywhere inside ``[min_hosts, max_hosts]``.
    """

    name: str = "default"
    cores_per_host: int = 1
    min_hosts: int = 1
    max_hosts: int = 4
    #: Hosts live at t=0 (defaults to ``min_hosts``).
    initial_hosts: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("host pool needs a name")
        if self.cores_per_host < 1:
            raise ConfigError("host pool needs at least one core per host")
        if self.min_hosts < 0:
            raise ConfigError("host pool min_hosts cannot be negative")
        if self.max_hosts < max(1, self.min_hosts):
            raise ConfigError(
                f"pool {self.name!r}: max_hosts must be >= max(1, min_hosts)"
            )
        start = self.start_hosts
        if not (self.min_hosts <= start <= self.max_hosts):
            raise ConfigError(
                f"pool {self.name!r}: initial_hosts {start} outside "
                f"[{self.min_hosts}, {self.max_hosts}]"
            )

    @property
    def start_hosts(self) -> int:
        return (
            self.initial_hosts
            if self.initial_hosts is not None
            else max(1, self.min_hosts)
        )


@dataclass(frozen=True)
class SegmentObservation:
    """What the controller sees after one stable segment.

    All rates and utilizations cover exactly the segment
    ``[time_s - duration_s, time_s)``; counters are segment totals, not
    running sums, so policies can difference-free compute burn rates.
    """

    segment_index: int
    #: Boundary time at which the decision is taken (segment end).
    time_s: float
    duration_s: float
    #: Live hosts during the segment, total and per pool.
    active_hosts: int
    pool_hosts: Mapping[str, int]
    resident_tenants: int
    #: Tenants turned away by admission during the segment.
    rejections: int
    #: Mean utilization over the segment's *live* hosts.
    me_utilization: float
    ve_utilization: float
    #: Requests offered / completed within SLO during the segment.
    offered: int
    attained: int
    #: Control-plane activity: hypercalls issued at the segment's
    #: leading boundary (admissions, departures, migrations).
    hypercalls: int = 0
    #: SR-IOV VF occupancy over the segment's live hosts.
    vf_in_use: int = 0
    vf_capacity: int = 0
    #: Live IOMMU entries (segment windows + DMA buffers) over the
    #: segment's live hosts.
    iommu_mappings: int = 0

    @property
    def vf_occupancy(self) -> float:
        """Fraction of the live hosts' VF pools in use (0.0 if unknown)."""
        if self.vf_capacity <= 0:
            return 0.0
        return self.vf_in_use / self.vf_capacity

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe form (streamed by ``repro serve`` and ``--progress``)."""
        out = dataclasses.asdict(self)
        out["pool_hosts"] = dict(self.pool_hosts)
        return out

    @property
    def attainment(self) -> float:
        """Fraction of offered requests served within SLO (1.0 if idle)."""
        if self.offered <= 0:
            return 1.0
        return self.attained / self.offered

    @property
    def utilization(self) -> float:
        """The binding resource: max of ME and VE utilization."""
        return max(self.me_utilization, self.ve_utilization)


@dataclass(frozen=True)
class ScalingAction:
    """One controller decision, applied at a segment boundary.

    An empty ``pool`` means "the first configured pool" -- the right
    default for the common single-pool cluster, resolved by the driver.
    ``rebalance`` ignores ``pool`` entirely: it migrates up to ``count``
    tenants from the most-loaded live host to the least-loaded one
    (through the placement policy) while each move strictly shrinks the
    load spread.  Reactive policies emit it after a scale-up, because
    fresh capacity is useless to already-placed tenants until someone
    moves them.
    """

    action: str  # ACTION_ADD | ACTION_DRAIN | ACTION_REBALANCE
    pool: str = ""
    count: int = 1
    reason: str = ""

    def __post_init__(self) -> None:
        if self.action not in (ACTION_ADD, ACTION_DRAIN, ACTION_REBALANCE):
            raise ConfigError(f"unknown scaling action {self.action!r}")
        if self.count < 1:
            raise ConfigError("scaling action count must be positive")


@dataclass
class AutoscaleEvent:
    """Audit-log entry for one applied (or refused) scaling step."""

    time_s: float
    action: str
    host: str
    pool: str
    reason: str = ""
    #: Tenants moved off a drained host: (tenant, from_host, to_host).
    migrations: List[Tuple[str, str, str]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"time_s": self.time_s, "action": self.action}
        # Rebalance events are fleet-wide: no single host or pool.
        if self.host:
            out["host"] = self.host
        if self.pool:
            out["pool"] = self.pool
        if self.reason:
            out["reason"] = self.reason
        if self.migrations:
            out["migrations"] = [list(m) for m in self.migrations]
        return out


def _scale_up(
    pool: str, count: int, reason: str, obs: SegmentObservation
) -> List[ScalingAction]:
    """An add plus the follow-up rebalance every reactive policy wants."""
    return [
        ScalingAction(ACTION_ADD, pool, count, reason),
        ScalingAction(
            ACTION_REBALANCE, pool, max(1, obs.resident_tenants),
            "spread residents over the grown fleet",
        ),
    ]


class Autoscaler:
    """Base class: a deterministic segment-driven scaling policy.

    Subclasses implement :meth:`observe`, mapping one
    :class:`SegmentObservation` to a (possibly empty) list of
    :class:`ScalingAction` s.  Policies must be pure functions of the
    observation stream and their constructor parameters -- no wall
    clocks, no RNG -- so cluster runs stay reproducible.
    """

    name = "base"

    def __init__(self, **params: Any) -> None:
        if params:
            raise ConfigError(
                f"autoscaler {self.name!r} takes no parameter(s) "
                f"{sorted(params)}"
            )

    def observe(self, obs: SegmentObservation) -> List[ScalingAction]:
        raise NotImplementedError

    def describe(self) -> Dict[str, Any]:
        """Parameters for provenance / ``--json`` metadata."""
        return {}


class StaticAutoscaler(Autoscaler):
    """Never scales: the fixed-provisioning baseline.

    Useful for apples-to-apples comparisons against a reactive policy:
    enabling it keeps the driver's observation boundaries (and therefore
    the per-segment arrival draws) identical to the reactive run while
    pinning capacity.
    """

    name = "static"

    def observe(self, obs: SegmentObservation) -> List[ScalingAction]:
        return []


class ThresholdAutoscaler(Autoscaler):
    """Classic hysteresis rule on cluster utilization.

    Scale up by ``step`` hosts when the binding-resource utilization of
    the last segment exceeds ``high``; scale down by one when it falls
    below ``low``.  The gap between the thresholds is the hysteresis
    band that prevents flapping.
    """

    name = "threshold"

    def __init__(
        self,
        high: float = 0.75,
        low: float = 0.25,
        step: int = 1,
        pool: str = "",
    ) -> None:
        if not (0.0 < low < high <= 1.0):
            raise ConfigError(
                f"threshold autoscaler needs 0 < low < high <= 1, "
                f"got low={low}, high={high}"
            )
        if step < 1:
            raise ConfigError("threshold autoscaler step must be positive")
        self.high = high
        self.low = low
        self.step = step
        self.pool = pool

    def observe(self, obs: SegmentObservation) -> List[ScalingAction]:
        util = obs.utilization
        if util > self.high or obs.rejections > 0:
            why = (
                f"rejections={obs.rejections}"
                if obs.rejections > 0
                else f"util {util:.2f} > {self.high:.2f}"
            )
            return _scale_up(self.pool, self.step, why, obs)
        if util < self.low and obs.resident_tenants > 0:
            return [ScalingAction(
                ACTION_DRAIN, self.pool, 1,
                f"util {util:.2f} < {self.low:.2f}",
            )]
        return []

    def describe(self) -> Dict[str, Any]:
        return {"high": self.high, "low": self.low, "step": self.step}


class TargetUtilizationAutoscaler(Autoscaler):
    """Proportional control toward a utilization setpoint (HPA-style).

    The desired host count is
    ``ceil(active_hosts * utilization / target)`` -- the smallest fleet
    that would have run the last segment at or below ``target`` -- and
    the policy emits the delta, clamped to ``max_step`` hosts per
    boundary so one noisy segment cannot whipsaw the fleet.
    """

    name = "target-utilization"

    def __init__(
        self,
        target: float = 0.6,
        max_step: int = 2,
        pool: str = "",
    ) -> None:
        if not (0.0 < target <= 1.0):
            raise ConfigError(
                f"target utilization must be in (0, 1], got {target}"
            )
        if max_step < 1:
            raise ConfigError("target-utilization max_step must be positive")
        self.target = target
        self.max_step = max_step
        self.pool = pool

    def observe(self, obs: SegmentObservation) -> List[ScalingAction]:
        if obs.active_hosts < 1:
            return [ScalingAction(ACTION_ADD, self.pool, 1, "cold start")]
        desired = math.ceil(obs.active_hosts * obs.utilization / self.target)
        if obs.rejections > 0:
            desired = max(desired, obs.active_hosts + 1)
        desired = max(1, desired)
        delta = desired - obs.active_hosts
        if delta > 0:
            return _scale_up(
                self.pool, min(delta, self.max_step),
                f"util {obs.utilization:.2f} -> want {desired} hosts", obs,
            )
        if delta < 0:
            return [ScalingAction(
                ACTION_DRAIN, self.pool, min(-delta, self.max_step),
                f"util {obs.utilization:.2f} -> want {desired} hosts",
            )]
        return []

    def describe(self) -> Dict[str, Any]:
        return {"target": self.target, "max_step": self.max_step}


class SloBurnRateAutoscaler(Autoscaler):
    """Error-budget burn-rate control on SLO attainment.

    SRE-style alerting logic turned into a scaler.  With an attainment
    objective ``slo_target`` (say 0.9), every segment burns
    ``(1 - attainment) / (1 - slo_target)`` of its error budget: burn
    1.0 means exactly on objective, above it the budget is being spent
    too fast.  The policy keeps a fast exponential average of the burn
    rate; when it crosses ``high_burn`` the policy adds hosts
    proportionally to the overshoot (and rebalances tenants onto them).
    Scale-down is deliberately slower: only after ``quiet_segments``
    *consecutive* segments with raw burn under ``low_burn`` and no
    rejections does it drain one host -- quick up, slow down, the
    asymmetry serving systems want.  Admission rejections short-circuit
    straight to scale-up.
    """

    name = "slo-burn-rate"

    def __init__(
        self,
        slo_target: float = 0.9,
        high_burn: float = 1.0,
        low_burn: float = 0.5,
        fast_alpha: float = 0.7,
        quiet_segments: int = 3,
        max_step: int = 2,
        pool: str = "",
    ) -> None:
        if not (0.0 < slo_target < 1.0):
            raise ConfigError(
                f"slo_target must be in (0, 1), got {slo_target}"
            )
        if not (0.0 < low_burn < high_burn):
            raise ConfigError("need 0 < low_burn < high_burn")
        if not (0.0 < fast_alpha <= 1.0):
            raise ConfigError(
                f"fast_alpha must be in (0, 1], got {fast_alpha}"
            )
        if quiet_segments < 1:
            raise ConfigError("quiet_segments must be positive")
        if max_step < 1:
            raise ConfigError("slo-burn-rate max_step must be positive")
        self.slo_target = slo_target
        self.high_burn = high_burn
        self.low_burn = low_burn
        self.fast_alpha = fast_alpha
        self.quiet_segments = quiet_segments
        self.max_step = max_step
        self.pool = pool
        self._fast: Optional[float] = None
        self._quiet = 0

    def observe(self, obs: SegmentObservation) -> List[ScalingAction]:
        burn = (1.0 - obs.attainment) / (1.0 - self.slo_target)
        self._fast = (
            burn if self._fast is None
            else self.fast_alpha * burn + (1 - self.fast_alpha) * self._fast
        )
        if obs.rejections > 0:
            self._quiet = 0
            return _scale_up(
                self.pool, 1, f"rejections={obs.rejections}", obs
            )
        if self._fast > self.high_burn:
            self._quiet = 0
            step = min(
                self.max_step,
                max(1, math.ceil(self._fast / self.high_burn) - 1),
            )
            return _scale_up(
                self.pool, step,
                f"fast burn {self._fast:.2f} > {self.high_burn:.2f}", obs,
            )
        if burn < self.low_burn:
            self._quiet += 1
            if self._quiet >= self.quiet_segments:
                self._quiet = 0
                return [ScalingAction(
                    ACTION_DRAIN, self.pool, 1,
                    f"burn < {self.low_burn:.2f} for "
                    f"{self.quiet_segments} segments",
                )]
        else:
            self._quiet = 0
        return []

    def describe(self) -> Dict[str, Any]:
        return {
            "slo_target": self.slo_target,
            "high_burn": self.high_burn,
            "low_burn": self.low_burn,
            "fast_alpha": self.fast_alpha,
            "quiet_segments": self.quiet_segments,
            "max_step": self.max_step,
        }
