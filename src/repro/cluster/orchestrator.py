"""Cluster orchestrator: admission, placement and release of vNPUs.

Plays the role KubeVirt/Kubernetes plays in the paper's deployment
story: tenants submit vNPU requests (optionally with a compile-time
profile and an EU budget for the allocator); the orchestrator picks a
host via the configured policy and drives that host's hypervisor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.compiler.profiler import WorkloadProfile
from repro.core.allocator import split_eu_budget
from repro.core.vnpu import VnpuConfig
from repro.cluster.host import Host
from repro.cluster.placement import LeastLoadedPolicy, PlacementPolicy
from repro.cluster.virt import (
    REJECT_CAPACITY,
    REJECT_HYPERCALL,
    REJECT_VF_EXHAUSTED,
)
from repro.config import MonotonicIds
from repro.errors import AllocationError, HypercallError

#: Process-wide placement-request id source; checkpoint restore
#: repositions it (see :class:`repro.config.MonotonicIds`).
_request_ids = MonotonicIds(1)


@dataclass
class PlacementRequest:
    """One tenant's ask."""

    owner: str
    num_mes: int = 1
    num_ves: int = 1
    sram_bytes: int = 0
    hbm_bytes: int = 0
    priority: float = 1.0
    #: Optional compile-time profile ratios, used by contention-aware
    #: placement and by the EU-budget path.
    m: Optional[float] = None
    v: Optional[float] = None
    request_id: int = field(default_factory=lambda: next(_request_ids))

    @staticmethod
    def from_profile(
        owner: str,
        profile: WorkloadProfile,
        total_eus: int,
        sram_bytes: int = 0,
        hbm_bytes: int = 0,
        priority: float = 1.0,
    ) -> "PlacementRequest":
        """Pay-as-you-go: size the ME/VE split from the profile (Eq. 4)."""
        num_mes, num_ves = split_eu_budget(profile.m, profile.v, total_eus)
        return PlacementRequest(
            owner=owner,
            num_mes=num_mes,
            num_ves=num_ves,
            sram_bytes=sram_bytes,
            hbm_bytes=hbm_bytes,
            priority=priority,
            m=profile.m,
            v=profile.v,
        )

    def as_vnpu_config(self) -> VnpuConfig:
        return VnpuConfig(
            num_mes_per_core=self.num_mes,
            num_ves_per_core=self.num_ves,
            sram_bytes_per_core=self.sram_bytes,
            hbm_bytes_per_core=self.hbm_bytes,
        )


@dataclass
class Placement:
    request: PlacementRequest
    host: Host
    vnpu_id: int


class ClusterOrchestrator:
    """Places vNPU requests onto hosts."""

    def __init__(
        self,
        hosts: List[Host],
        policy: Optional[PlacementPolicy] = None,
    ) -> None:
        if not hosts:
            raise AllocationError("cluster needs at least one host")
        names = [h.name for h in hosts]
        if len(set(names)) != len(names):
            raise AllocationError("host names must be unique")
        self.hosts = list(hosts)
        self.policy = policy if policy is not None else LeastLoadedPolicy()
        self._placements: Dict[int, Placement] = {}
        self.rejected: List[PlacementRequest] = []
        #: request_id -> why admission turned it away (``REJECT_*`` in
        #: :mod:`repro.cluster.virt`).
        self.rejection_causes: Dict[int, str] = {}

    # ------------------------------------------------------------------
    def _diagnose_rejection(self, request: PlacementRequest) -> str:
        """Why no host could take ``request``.

        The placement policies admit iff some host has both free engines
        and a free VF, so when engines fit somewhere the only possible
        blocker is SR-IOV VF exhaustion -- the control-plane limit the
        paper's SR-IOV design imposes.
        """
        if any(
            h.fits_engines(request.num_mes, request.num_ves)
            for h in self.hosts
        ):
            return REJECT_VF_EXHAUSTED
        return REJECT_CAPACITY

    def _record_rejection(self, request: PlacementRequest, cause: str) -> None:
        self.rejected.append(request)
        self.rejection_causes[request.request_id] = cause

    def submit(self, request: PlacementRequest) -> Optional[Placement]:
        """Admit and place; returns None (and records) when rejected."""
        host = self.policy.choose(self.hosts, request)
        if host is None:
            self._record_rejection(request, self._diagnose_rejection(request))
            return None
        try:
            handle = host.place(
                request.as_vnpu_config(),
                owner=request.owner,
                m=request.m,
                v=request.v,
                priority=request.priority,
            )
        except HypercallError:
            # The policy judged the host feasible but the hypervisor
            # refused the create; the control plane has the final word.
            self._record_rejection(request, REJECT_HYPERCALL)
            return None
        placement = Placement(
            request=request, host=host, vnpu_id=handle.vnpu_id
        )
        self._placements[request.request_id] = placement
        return placement

    def release(self, request_id: int) -> None:
        placement = self._placements.pop(request_id, None)
        if placement is None:
            raise AllocationError(f"unknown placement {request_id}")
        placement.host.release(placement.vnpu_id)

    # ------------------------------------------------------------------
    # Elastic membership (autoscaling)
    # ------------------------------------------------------------------
    def add_host(self, host: Host) -> None:
        """Bring a new host into the placement set (scale-up)."""
        if any(h.name == host.name for h in self.hosts):
            raise AllocationError(f"host {host.name!r} is already registered")
        self.hosts.append(host)

    def remove_host(self, name: str) -> Host:
        """Retire an *empty* host from the placement set (scale-down).

        Drain its residents first (see :meth:`migrate`); removing an
        occupied host would strand live placements.
        """
        for i, host in enumerate(self.hosts):
            if host.name == name:
                if host.resident:
                    raise AllocationError(
                        f"host {name!r} still hosts "
                        f"{len(host.resident)} vNPU(s); drain it first"
                    )
                if len(self.hosts) == 1:
                    raise AllocationError(
                        "cannot remove the last host of a cluster"
                    )
                return self.hosts.pop(i)
        raise AllocationError(f"unknown host {name!r}")

    def migrate(
        self,
        request_id: int,
        exclude: Tuple[str, ...] = (),
    ) -> Optional[Placement]:
        """Re-place one live tenant onto a different host.

        The configured policy picks the target among hosts not named in
        ``exclude`` (typically the host being drained).  Returns the new
        placement, or ``None`` -- placement untouched -- when no other
        host fits the request.  Unlike :meth:`submit`, a failed
        migration is not recorded as a rejection: the tenant keeps
        running where it is.
        """
        placement = self._placements.get(request_id)
        if placement is None:
            raise AllocationError(f"unknown placement {request_id}")
        banned = set(exclude) | {placement.host.name}
        candidates = [h for h in self.hosts if h.name not in banned]
        if not candidates:
            return None
        target = self.policy.choose(candidates, placement.request)
        if target is None:
            return None
        placement.host.release(placement.vnpu_id)
        request = placement.request
        try:
            handle = target.place(
                request.as_vnpu_config(),
                owner=request.owner,
                m=request.m,
                v=request.v,
                priority=request.priority,
            )
        except HypercallError:
            # The target's control plane refused (e.g. a policy that
            # skipped the feasibility check against a VF-exhausted
            # host).  Re-place on the source host -- its engines and VF
            # were freed just above, so this cannot fail -- keeping the
            # "failed migration leaves the tenant running" contract.
            handle = placement.host.place(
                request.as_vnpu_config(),
                owner=request.owner,
                m=request.m,
                v=request.v,
                priority=request.priority,
            )
            self._placements[request_id] = Placement(
                request=request, host=placement.host, vnpu_id=handle.vnpu_id
            )
            return None
        moved = Placement(
            request=request, host=target, vnpu_id=handle.vnpu_id
        )
        self._placements[request_id] = moved
        return moved

    # ------------------------------------------------------------------
    def placements(self) -> List[Placement]:
        return list(self._placements.values())

    def utilization(self) -> Dict[str, float]:
        return {h.name: h.load for h in self.hosts}

    def collocation_map(self) -> Dict[str, List[str]]:
        """Host name -> owners resident there (for policy studies)."""
        out: Dict[str, List[str]] = {h.name: [] for h in self.hosts}
        for placement in self._placements.values():
            out[placement.host.name].append(placement.request.owner)
        return out

    def rejection_cause_counts(self) -> Dict[str, int]:
        """Rejections per cause (empty when everything was admitted)."""
        out: Dict[str, int] = {}
        for cause in self.rejection_causes.values():
            out[cause] = out.get(cause, 0) + 1
        return out

    def admission_rate(self) -> float:
        total = len(self._placements) + len(self.rejected)
        if total == 0:
            return 1.0
        return len(self._placements) / total


def complementarity_score(pairs: List[Tuple[float, float]]) -> float:
    """Mean |m1 + m2 - 1| over collocated pairs: 0 is perfectly
    complementary (one ME-heavy with one VE-heavy), 1 is worst.  Used to
    compare placement policies in tests and examples."""
    if not pairs:
        return 0.0
    return sum(abs(m1 + m2 - 1.0) for m1, m2 in pairs) / len(pairs)
