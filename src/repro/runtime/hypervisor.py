"""Hypervisor integration (paper SectionIII-F, Fig. 11).

The hypervisor "only mediates the resource management functions that are
not on the critical path": three hypercalls routed to the vNPU manager.
On vNPU creation it also:

- assigns an SR-IOV virtual function and programs its BAR identity
  registers,
- attaches the vNPU's SRAM/HBM segment windows to the IOMMU,
- registers the guest's DMA buffer for remapping.

Data-path operations (command submission, polling) bypass it entirely.

Every hypercall is counted (total and per type); the cluster serving
driver (:mod:`repro.traffic.cluster_sim`) turns those counts into a
modelled control-plane latency charged against tenant onboarding time.
The hypervisor also owns a :class:`~repro.runtime.vm.HostAddressSpace`,
so guest VMs it creates get deterministic, per-host, non-aliasing
host-physical strides.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.compiler.profiler import WorkloadProfile
from repro.config import HBM_SEGMENT_BYTES, NpuCoreConfig, SRAM_SEGMENT_BYTES
from repro.core.manager import VnpuManager
from repro.core.mapper import MappingMode
from repro.core.vnpu import VnpuConfig, VnpuInstance, VnpuState
from repro.errors import HypercallError
from repro.runtime.iommu import Iommu, MemoryKind
from repro.runtime.sriov import SriovRegistry, VirtualFunction
from repro.runtime.vm import GuestVm, HostAddressSpace


@dataclass
class VnpuHandle:
    """What the guest gets back from a create hypercall."""

    vnpu_id: int
    vf_bdf: str
    config: VnpuConfig


class Hypervisor:
    """Mediates vNPU lifecycle; owns the manager, IOMMU and SR-IOV."""

    def __init__(
        self,
        cores: List[NpuCoreConfig],
        mode: MappingMode = MappingMode.SPATIAL,
        num_vfs: int = 16,
    ) -> None:
        self.manager = VnpuManager(cores, mode=mode)
        self.iommu = Iommu()
        self.sriov = SriovRegistry(num_vfs=num_vfs)
        self.address_space = HostAddressSpace()
        self.hypercall_count = 0
        self.hypercall_counts: Dict[str, int] = {
            "create": 0, "reconfigure": 0, "destroy": 0,
        }

    def _count_hypercall(self, kind: str) -> None:
        self.hypercall_count += 1
        self.hypercall_counts[kind] += 1

    # ------------------------------------------------------------------
    # Guest VMs
    # ------------------------------------------------------------------
    def create_vm(self, name: str, memory_bytes: int = 16 * 2**30) -> GuestVm:
        """A guest VM backed by this host's own address space, so host
        bases are deterministic per host regardless of process history."""
        return GuestVm(name, memory_bytes, address_space=self.address_space)

    # ------------------------------------------------------------------
    # Occupancy telemetry
    # ------------------------------------------------------------------
    @property
    def vf_capacity(self) -> int:
        return self.sriov.num_vfs

    @property
    def vf_in_use(self) -> int:
        return self.sriov.in_use

    @property
    def vf_free(self) -> int:
        return self.sriov.num_vfs - self.sriov.in_use

    @property
    def iommu_mapping_count(self) -> int:
        return self.iommu.mapping_count

    # ------------------------------------------------------------------
    # Hypercalls
    # ------------------------------------------------------------------
    def hypercall_create(
        self,
        config: VnpuConfig,
        owner: str = "tenant",
        priority: float = 1.0,
        profile: Optional[WorkloadProfile] = None,
        total_eus: Optional[int] = None,
    ) -> VnpuHandle:
        """Create a vNPU; with ``profile`` + ``total_eus`` the allocator
        overrides the requested ME/VE split."""
        self._count_hypercall("create")
        try:
            if profile is not None and total_eus is not None:
                vnpu = self.manager.create_for_workload(
                    profile, total_eus, owner=owner, priority=priority
                )
            else:
                vnpu = self.manager.create(config, owner=owner, priority=priority)
        except Exception as exc:
            raise HypercallError(f"vNPU creation rejected: {exc}") from exc
        try:
            vf = self._wire_device(vnpu)
        except Exception as exc:
            # The vNPU was mapped but could not be wired (typically VF
            # exhaustion): unwind the manager state so a rejected create
            # leaves the host exactly as it found it.
            self._unwire_device(vnpu)
            self.manager.destroy(vnpu.vnpu_id)
            raise HypercallError(f"vNPU creation rejected: {exc}") from exc
        vnpu.transition(VnpuState.ACTIVE)
        return VnpuHandle(vnpu_id=vnpu.vnpu_id, vf_bdf=vf.bdf, config=vnpu.config)

    def hypercall_reconfigure(self, vnpu_id: int, config: VnpuConfig) -> VnpuHandle:
        """Resize a live vNPU.  The guest's DMA registrations survive
        (its DMA buffer is unchanged); the VF and segment windows are
        re-assigned, so a guest driver must re-query its BAR (see
        :meth:`repro.runtime.driver.VnpuDriver.reconfigure`)."""
        self._count_hypercall("reconfigure")
        unwired = False
        try:
            old = self.manager.get(vnpu_id)
            self._unwire_device(old, keep_dma=True)
            unwired = True
            vnpu = self.manager.reconfigure(vnpu_id, config)
        except HypercallError:
            raise
        except Exception as exc:
            if unwired:
                # The manager restored (or kept) a mapping under this id;
                # rewire it so a rejected reconfigure is a no-op.
                try:
                    survivor = self.manager.get(vnpu_id)
                except Exception:
                    survivor = None
                if survivor is not None and self.sriov.vf_of(vnpu_id) is None:
                    self._wire_device(survivor)
            raise HypercallError(f"vNPU reconfigure rejected: {exc}") from exc
        vf = self._wire_device(vnpu)
        if vnpu.state is not VnpuState.ACTIVE:
            vnpu.transition(VnpuState.ACTIVE)
        return VnpuHandle(vnpu_id=vnpu.vnpu_id, vf_bdf=vf.bdf, config=vnpu.config)

    def hypercall_destroy(self, vnpu_id: int) -> None:
        """Clean up the vNPU context and remove its DMA setup."""
        self._count_hypercall("destroy")
        try:
            vnpu = self.manager.get(vnpu_id)
            self._unwire_device(vnpu)
            self.manager.destroy(vnpu_id)
        except HypercallError:
            raise
        except Exception as exc:
            raise HypercallError(f"vNPU destroy rejected: {exc}") from exc

    # ------------------------------------------------------------------
    # Device plumbing
    # ------------------------------------------------------------------
    def _wire_device(self, vnpu: VnpuInstance) -> VirtualFunction:
        vf = self.sriov.assign(vnpu.vnpu_id)
        cfg = vnpu.config
        vf.bar.load_identity(
            vnpu_id=vnpu.vnpu_id,
            num_chips=cfg.num_chips,
            num_cores_per_chip=cfg.num_cores_per_chip,
            num_mes=cfg.num_mes_per_core,
            num_ves=cfg.num_ves_per_core,
            sram_bytes=cfg.sram_bytes_per_core,
            hbm_bytes=cfg.hbm_bytes_per_core,
        )
        if cfg.sram_bytes_per_core > 0:
            self.iommu.attach_window(
                vnpu.vnpu_id,
                MemoryKind.SRAM,
                vnpu.sram_segment_base or 0,
                max(1, cfg.sram_bytes_per_core // SRAM_SEGMENT_BYTES),
            )
        if cfg.hbm_bytes_per_core > 0:
            self.iommu.attach_window(
                vnpu.vnpu_id,
                MemoryKind.HBM,
                vnpu.hbm_segment_base or 0,
                max(1, cfg.hbm_bytes_per_core // HBM_SEGMENT_BYTES),
            )
        return vf

    def _unwire_device(self, vnpu: VnpuInstance, keep_dma: bool = False) -> None:
        if self.sriov.vf_of(vnpu.vnpu_id) is not None:
            self.sriov.release(vnpu.vnpu_id)
        if keep_dma:
            self.iommu.detach_windows(vnpu.vnpu_id)
        else:
            self.iommu.detach(vnpu.vnpu_id)

    # ------------------------------------------------------------------
    def bar_of(self, vnpu_id: int):
        vf = self.sriov.vf_of(vnpu_id)
        if vf is None:
            raise HypercallError(f"vNPU {vnpu_id} has no virtual function")
        return vf.bar
