"""System support for NPU virtualization (paper SectionIII-F).

A functional model of the control plane the paper builds on KVM:

- :mod:`repro.runtime.hypervisor` -- hypercall dispatch to the vNPU
  manager; off-critical-path management only.
- :mod:`repro.runtime.vm` / :mod:`repro.runtime.driver` -- guest VM with
  a para-virtualized vNPU driver issuing hypercalls and MMIO.
- :mod:`repro.runtime.mmio` -- the memory-mapped register file and
  doorbells of a vNPU's PCIe BAR.
- :mod:`repro.runtime.command` -- the command ring the NPU fetches from
  host memory without hypervisor intervention.
- :mod:`repro.runtime.iommu` -- DMA remapping with segment-based
  SRAM/HBM isolation (2 MB / 1 GB segments) and fault injection.
- :mod:`repro.runtime.sriov` -- SR-IOV virtual-function registry.
"""

from repro.runtime.command import Command, CommandOpcode, CommandRing
from repro.runtime.driver import VnpuDriver
from repro.runtime.hypervisor import Hypervisor
from repro.runtime.iommu import Iommu, MemoryKind
from repro.runtime.mmio import MmioRegisterFile, Register
from repro.runtime.sriov import SriovRegistry, VirtualFunction
from repro.runtime.vm import GuestVm

__all__ = [
    "Command",
    "CommandOpcode",
    "CommandRing",
    "GuestVm",
    "Hypervisor",
    "Iommu",
    "MemoryKind",
    "MmioRegisterFile",
    "Register",
    "SriovRegistry",
    "VirtualFunction",
    "VnpuDriver",
]
