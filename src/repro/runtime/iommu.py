"""IOMMU and segment-based memory isolation (paper SectionIII-C/F).

Neu10 "enforces memory address space isolation among collocated vNPUs
with the conventional memory segmentation scheme for both HBM and SRAM":
fixed-size segments (2 MB SRAM, 1 GB HBM) are mapped contiguously into a
vNPU's virtual address space.  Translation is a base-plus-offset add; an
out-of-bounds access raises a fault (the paper's page fault).  The same
object performs DMA remapping for host<->device transfers: a vNPU may
only DMA into its own registered buffers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.config import HBM_SEGMENT_BYTES, SRAM_SEGMENT_BYTES
from repro.errors import DmaFault, SegmentationFault


class MemoryKind(enum.Enum):
    SRAM = ("sram", SRAM_SEGMENT_BYTES)
    HBM = ("hbm", HBM_SEGMENT_BYTES)

    def __init__(self, label: str, segment_bytes: int) -> None:
        self.label = label
        self.segment_bytes = segment_bytes


@dataclass(frozen=True)
class SegmentWindow:
    """A vNPU's contiguous run of physical segments in one memory."""

    base_segment: int
    num_segments: int
    segment_bytes: int

    @property
    def size_bytes(self) -> int:
        return self.num_segments * self.segment_bytes

    @property
    def base_bytes(self) -> int:
        return self.base_segment * self.segment_bytes


class Iommu:
    """Per-device translation + protection tables."""

    def __init__(self) -> None:
        self._windows: Dict[Tuple[int, MemoryKind], SegmentWindow] = {}
        self._dma_buffers: Dict[int, List[Tuple[int, int]]] = {}
        self.fault_count = 0
        #: Cumulative counters (never decremented) for control-plane
        #: telemetry; the live table sizes are the ``*_count`` properties.
        self.windows_attached_total = 0
        self.dma_registrations_total = 0

    # ------------------------------------------------------------------
    # Occupancy telemetry
    # ------------------------------------------------------------------
    @property
    def window_count(self) -> int:
        """Live SRAM/HBM segment windows across all vNPUs."""
        return len(self._windows)

    @property
    def dma_buffer_count(self) -> int:
        """Live registered DMA buffers across all vNPUs."""
        return sum(len(v) for v in self._dma_buffers.values())

    @property
    def mapping_count(self) -> int:
        """Total live IOMMU entries (segment windows + DMA buffers)."""
        return self.window_count + self.dma_buffer_count

    # ------------------------------------------------------------------
    # Segment windows (NPU-side SRAM/HBM isolation)
    # ------------------------------------------------------------------
    def attach_window(
        self, vnpu_id: int, kind: MemoryKind, base_segment: int, num_segments: int
    ) -> SegmentWindow:
        if base_segment < 0 or num_segments < 1:
            raise SegmentationFault("invalid segment window")
        window = SegmentWindow(
            base_segment=base_segment,
            num_segments=num_segments,
            segment_bytes=kind.segment_bytes,
        )
        if (vnpu_id, kind) not in self._windows:
            self.windows_attached_total += 1
        self._windows[(vnpu_id, kind)] = window
        return window

    def detach(self, vnpu_id: int) -> None:
        self.detach_windows(vnpu_id)
        self._dma_buffers.pop(vnpu_id, None)

    def detach_windows(self, vnpu_id: int) -> None:
        """Drop the segment windows but keep DMA registrations (used by
        reconfigure, where the guest's DMA buffer stays valid)."""
        for key in [k for k in self._windows if k[0] == vnpu_id]:
            del self._windows[key]

    def translate(self, vnpu_id: int, kind: MemoryKind, virt_addr: int) -> int:
        """Virtual (vNPU-local) address -> physical byte address.

        "The address translation is performed by adding the segment
        offset to the starting address of the physical segment."
        A fault is raised for addresses outside the vNPU's window.
        """
        window = self._windows.get((vnpu_id, kind))
        if window is None:
            self.fault_count += 1
            raise SegmentationFault(
                f"vNPU {vnpu_id} has no {kind.label} window"
            )
        if not 0 <= virt_addr < window.size_bytes:
            self.fault_count += 1
            raise SegmentationFault(
                f"vNPU {vnpu_id}: {kind.label} address 0x{virt_addr:x} "
                f"outside its {window.size_bytes}-byte window"
            )
        return window.base_bytes + virt_addr

    def window_of(self, vnpu_id: int, kind: MemoryKind) -> SegmentWindow:
        window = self._windows.get((vnpu_id, kind))
        if window is None:
            raise SegmentationFault(f"vNPU {vnpu_id} has no {kind.label} window")
        return window

    # ------------------------------------------------------------------
    # DMA remapping (host-memory side)
    # ------------------------------------------------------------------
    def register_dma_buffer(self, vnpu_id: int, guest_addr: int, size: int) -> None:
        if size <= 0 or guest_addr < 0:
            raise DmaFault("invalid DMA buffer registration")
        self._dma_buffers.setdefault(vnpu_id, []).append((guest_addr, size))
        self.dma_registrations_total += 1

    def check_dma(self, vnpu_id: int, guest_addr: int, size: int) -> None:
        """Validate a device DMA against the vNPU's registered buffers."""
        for base, length in self._dma_buffers.get(vnpu_id, []):
            if base <= guest_addr and guest_addr + size <= base + length:
                return
        self.fault_count += 1
        raise DmaFault(
            f"vNPU {vnpu_id}: DMA to unregistered guest range "
            f"[0x{guest_addr:x}, +{size})"
        )
