"""SR-IOV virtual functions (paper SectionIII-F).

"Neu10 uses SR-IOV to expose each vNPU as a PCIe virtual function to the
VM via PCIe-passthrough."  The registry models a physical function (PF)
with a bounded pool of virtual functions (VFs); each live vNPU occupies
one VF, which carries its BAR (the MMIO register file) and its IOMMU
domain id.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import VirtualizationError
from repro.runtime.mmio import MmioRegisterFile


@dataclass
class VirtualFunction:
    vf_index: int
    vnpu_id: int
    bar: MmioRegisterFile = field(default_factory=MmioRegisterFile)

    @property
    def bdf(self) -> str:
        """Synthetic PCI bus:device.function address for the VF."""
        return f"0000:a0:{self.vf_index // 8:02x}.{self.vf_index % 8}"


class SriovRegistry:
    """Physical function with a pool of SR-IOV virtual functions."""

    def __init__(self, num_vfs: int = 16) -> None:
        if num_vfs < 1:
            raise VirtualizationError("need at least one virtual function")
        self.num_vfs = num_vfs
        self._vfs: Dict[int, VirtualFunction] = {}

    def assign(self, vnpu_id: int) -> VirtualFunction:
        if any(vf.vnpu_id == vnpu_id for vf in self._vfs.values()):
            raise VirtualizationError(f"vNPU {vnpu_id} already has a VF")
        for index in range(self.num_vfs):
            if index not in self._vfs:
                vf = VirtualFunction(vf_index=index, vnpu_id=vnpu_id)
                self._vfs[index] = vf
                return vf
        raise VirtualizationError("out of SR-IOV virtual functions")

    def release(self, vnpu_id: int) -> None:
        for index, vf in list(self._vfs.items()):
            if vf.vnpu_id == vnpu_id:
                del self._vfs[index]
                return
        raise VirtualizationError(f"no VF assigned to vNPU {vnpu_id}")

    def vf_of(self, vnpu_id: int) -> Optional[VirtualFunction]:
        for vf in self._vfs.values():
            if vf.vnpu_id == vnpu_id:
                return vf
        return None

    @property
    def in_use(self) -> int:
        return len(self._vfs)
