"""Guest VM container.

Holds guest "physical" memory (a flat byte-addressed space with bounds
checks), the DMA buffer region the device accesses through the IOMMU,
and the vNPU drivers the guest loaded.  This is control-plane modelling:
memory content is tracked as allocation metadata, not bytes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List

from repro.errors import VirtualizationError

#: Each VM's memory occupies a disjoint host-physical stride, so DMA
#: addresses from different tenants never alias in the IOMMU tables.
_HOST_STRIDE = 64 * 2**30
_next_host_slot = itertools.count(0)


@dataclass
class GuestAllocation:
    addr: int
    size: int
    label: str


class GuestVm:
    """One tenant VM with guest-physical memory."""

    def __init__(self, name: str, memory_bytes: int = 16 * 2**30) -> None:
        if memory_bytes <= 0:
            raise VirtualizationError("guest memory must be positive")
        if memory_bytes > _HOST_STRIDE:
            raise VirtualizationError("guest memory exceeds the host stride")
        self.name = name
        self.memory_bytes = memory_bytes
        self.host_base = next(_next_host_slot) * _HOST_STRIDE
        self._allocations: List[GuestAllocation] = []
        self._next_addr = self.host_base + 0x1000

    def alloc(self, size: int, label: str = "buffer") -> GuestAllocation:
        if size <= 0:
            raise VirtualizationError("allocation size must be positive")
        addr = self._next_addr
        if addr + size > self.host_base + self.memory_bytes:
            raise VirtualizationError(
                f"guest {self.name}: out of memory allocating {size} bytes"
            )
        allocation = GuestAllocation(addr=addr, size=size, label=label)
        self._allocations.append(allocation)
        # Keep allocations page aligned.
        self._next_addr = (addr + size + 0xFFF) & ~0xFFF
        return allocation

    def free(self, allocation: GuestAllocation) -> None:
        try:
            self._allocations.remove(allocation)
        except ValueError as exc:
            raise VirtualizationError("double free of guest allocation") from exc

    def owns(self, addr: int, size: int) -> bool:
        return any(
            a.addr <= addr and addr + size <= a.addr + a.size
            for a in self._allocations
        )

    @property
    def allocations(self) -> List[GuestAllocation]:
        return list(self._allocations)
