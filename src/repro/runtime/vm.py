"""Guest VM container.

Holds guest "physical" memory (a flat byte-addressed space with bounds
checks), the DMA buffer region the device accesses through the IOMMU,
and the vNPU drivers the guest loaded.  This is control-plane modelling:
memory content is tracked as allocation metadata, not bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import VirtualizationError

#: Each VM's memory occupies a disjoint host-physical stride, so DMA
#: addresses from different tenants never alias in the IOMMU tables.
HOST_STRIDE = 64 * 2**30


class HostAddressSpace:
    """Owner of the host-physical slot allocator for guest VMs.

    Each VM created against one address space gets a disjoint
    ``HOST_STRIDE``-sized stride, so DMA addresses of collocated
    tenants never alias in the IOMMU tables.  Slot allocation used to
    live in module-level mutable state, which made host bases depend on
    how many VMs *any* earlier test or run had created in the process;
    scoping the counter to an owner (each :class:`Hypervisor` holds its
    own) restores run-to-run determinism and ``parallel_map`` worker
    equivalence.
    """

    def __init__(self) -> None:
        self._next_slot = 0

    def allocate_base(self) -> int:
        """Claim the next free stride and return its base address."""
        base = self._next_slot * HOST_STRIDE
        self._next_slot += 1
        return base

    @property
    def slots_allocated(self) -> int:
        return self._next_slot

    def reset(self) -> None:
        """Forget every allocation (only safe once all VMs are gone)."""
        self._next_slot = 0


#: Fallback space for VMs constructed without an explicit owner, e.g.
#: standalone driver examples.  Resettable via ``reset()``; code that
#: needs deterministic bases should pass a scoped space (the hypervisor
#: does).
DEFAULT_HOST_ADDRESS_SPACE = HostAddressSpace()


@dataclass
class GuestAllocation:
    addr: int
    size: int
    label: str


class GuestVm:
    """One tenant VM with guest-physical memory."""

    def __init__(
        self,
        name: str,
        memory_bytes: int = 16 * 2**30,
        address_space: Optional[HostAddressSpace] = None,
    ) -> None:
        if memory_bytes <= 0:
            raise VirtualizationError("guest memory must be positive")
        if memory_bytes > HOST_STRIDE:
            raise VirtualizationError("guest memory exceeds the host stride")
        self.name = name
        self.memory_bytes = memory_bytes
        space = address_space if address_space is not None else DEFAULT_HOST_ADDRESS_SPACE
        self.host_base = space.allocate_base()
        self._allocations: List[GuestAllocation] = []
        self._next_addr = self.host_base + 0x1000

    def alloc(self, size: int, label: str = "buffer") -> GuestAllocation:
        if size <= 0:
            raise VirtualizationError("allocation size must be positive")
        addr = self._next_addr
        if addr + size > self.host_base + self.memory_bytes:
            raise VirtualizationError(
                f"guest {self.name}: out of memory allocating {size} bytes"
            )
        allocation = GuestAllocation(addr=addr, size=size, label=label)
        self._allocations.append(allocation)
        # Keep allocations page aligned.
        self._next_addr = (addr + size + 0xFFF) & ~0xFFF
        return allocation

    def free(self, allocation: GuestAllocation) -> None:
        try:
            self._allocations.remove(allocation)
        except ValueError as exc:
            raise VirtualizationError("double free of guest allocation") from exc

    def owns(self, addr: int, size: int) -> bool:
        return any(
            a.addr <= addr and addr + size <= a.addr + a.size
            for a in self._allocations
        )

    @property
    def allocations(self) -> List[GuestAllocation]:
        return list(self._allocations)
