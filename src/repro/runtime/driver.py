"""The para-virtualized guest vNPU driver (paper SectionIII-F).

The driver is the guest-side API surface of Neu10:

- issues the three hypercalls for vNPU lifecycle,
- queries the vNPU hierarchy through the BAR identity registers,
- allocates a DMA buffer and registers it with the IOMMU,
- submits memcpy/launch/sync commands through the command ring and
  rings the doorbell,
- polls the completion registers (or a completion callback models the
  interrupt path).

"The vNPU driver greatly resembles a native NPU driver thanks to PCIe
pass-through" -- the only para-virtualized pieces are the hypercalls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.vnpu import VnpuConfig
from repro.errors import VirtualizationError
from repro.runtime.command import Command, CommandOpcode, CommandRing
from repro.runtime.hypervisor import Hypervisor, VnpuHandle
from repro.runtime.mmio import DeviceStatus, MmioRegisterFile, Register
from repro.runtime.vm import GuestAllocation, GuestVm


@dataclass
class VnpuHierarchy:
    """What the guest learns by reading the identity registers."""

    vnpu_id: int
    num_chips: int
    num_cores_per_chip: int
    num_mes_per_core: int
    num_ves_per_core: int
    sram_bytes: int
    hbm_bytes: int


class VnpuDriver:
    """Guest driver bound to one vNPU virtual function."""

    def __init__(
        self,
        vm: GuestVm,
        hypervisor: Hypervisor,
        dma_buffer_bytes: int = 256 * 2**20,
    ) -> None:
        self.vm = vm
        self.hypervisor = hypervisor
        self.dma_buffer_bytes = dma_buffer_bytes
        self.handle: Optional[VnpuHandle] = None
        self.ring = CommandRing()
        self.dma_buffer: Optional[GuestAllocation] = None
        self._bar: Optional[MmioRegisterFile] = None
        self._submitted: List[Command] = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def open(self, config: VnpuConfig, priority: float = 1.0) -> VnpuHandle:
        """Request a vNPU and set up the data path.

        All-or-nothing: if any data-path setup step fails after the
        create hypercall succeeded (DMA buffer allocation, IOMMU
        registration), the vNPU is destroyed again so hypervisor state
        is exactly what it was before the call, and the driver stays
        unbound and reusable.
        """
        if self.handle is not None:
            raise VirtualizationError("driver already bound to a vNPU")
        handle = self.hypervisor.hypercall_create(
            config, owner=self.vm.name, priority=priority
        )
        dma_buffer = None
        try:
            bar = self.hypervisor.bar_of(handle.vnpu_id)
            bar.doorbell_handler = self._on_doorbell
            dma_buffer = self.vm.alloc(self.dma_buffer_bytes, label="dma")
            self.hypervisor.iommu.register_dma_buffer(
                handle.vnpu_id, dma_buffer.addr, dma_buffer.size
            )
            bar.set_status(DeviceStatus.IDLE)
        except Exception:
            # Unwind: the destroy hypercall releases the VF and detaches
            # every IOMMU entry (windows and DMA registrations).
            if dma_buffer is not None:
                self.vm.free(dma_buffer)
            self.hypervisor.hypercall_destroy(handle.vnpu_id)
            raise
        # Bind only once every step succeeded: a failed open never
        # leaves the driver half-bound.
        self.handle = handle
        self._bar = bar
        self.dma_buffer = dma_buffer
        return self.handle

    def reconfigure(self, config: VnpuConfig) -> VnpuHandle:
        """Resize the bound vNPU and re-bind the data path.

        The reconfigure hypercall re-assigns the virtual function, so
        the driver must pick up the new BAR and re-arm its doorbell;
        the DMA buffer and its IOMMU registration survive untouched.
        On rejection the old binding is restored and remains usable.
        """
        if self.handle is None or self._bar is None:
            raise VirtualizationError("driver is not bound to a vNPU")
        old_bar = self._bar
        try:
            handle = self.hypervisor.hypercall_reconfigure(
                self.handle.vnpu_id, config
            )
        except Exception:
            # A rejected reconfigure rewired the old VF; re-arm it.
            self._bar = self.hypervisor.bar_of(self.handle.vnpu_id)
            self._bar.doorbell_handler = self._on_doorbell
            self._bar.set_status(DeviceStatus.IDLE)
            raise
        finally:
            old_bar.doorbell_handler = None
        self.handle = handle
        self._bar = self.hypervisor.bar_of(handle.vnpu_id)
        self._bar.doorbell_handler = self._on_doorbell
        self._bar.set_status(DeviceStatus.IDLE)
        return handle

    def close(self) -> None:
        if self.handle is None:
            raise VirtualizationError("driver is not bound to a vNPU")
        self.hypervisor.hypercall_destroy(self.handle.vnpu_id)
        if self.dma_buffer is not None:
            self.vm.free(self.dma_buffer)
        self.handle = None
        self._bar = None
        self.dma_buffer = None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query_hierarchy(self) -> VnpuHierarchy:
        bar = self._require_bar()
        return VnpuHierarchy(
            vnpu_id=bar.read(Register.VNPU_ID),
            num_chips=bar.read(Register.NUM_CHIPS),
            num_cores_per_chip=bar.read(Register.NUM_CORES_PER_CHIP),
            num_mes_per_core=bar.read(Register.NUM_MES_PER_CORE),
            num_ves_per_core=bar.read(Register.NUM_VES_PER_CORE),
            sram_bytes=(bar.read(Register.SRAM_BYTES_HI) << 32)
            | bar.read(Register.SRAM_BYTES_LO),
            hbm_bytes=(bar.read(Register.HBM_BYTES_HI) << 32)
            | bar.read(Register.HBM_BYTES_LO),
        )

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def memcpy_to_device(self, offset_in_dma: int, size: int, device_addr: int) -> Command:
        return self._submit(
            Command(
                opcode=CommandOpcode.MEMCPY_H2D,
                guest_addr=self._dma_addr(offset_in_dma, size),
                device_addr=device_addr,
                size=size,
            )
        )

    def memcpy_from_device(self, offset_in_dma: int, size: int, device_addr: int) -> Command:
        return self._submit(
            Command(
                opcode=CommandOpcode.MEMCPY_D2H,
                guest_addr=self._dma_addr(offset_in_dma, size),
                device_addr=device_addr,
                size=size,
            )
        )

    def launch(self, program_id: int) -> Command:
        return self._submit(
            Command(opcode=CommandOpcode.LAUNCH, program_id=program_id)
        )

    def sync(self) -> Command:
        return self._submit(Command(opcode=CommandOpcode.SYNC))

    def poll_completed(self) -> int:
        """Poll the memory-mapped completion counter."""
        return self._require_bar().completed_count()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _submit(self, command: Command) -> Command:
        bar = self._require_bar()
        self.ring.push(command)
        self._submitted.append(command)
        bar.write(Register.DOORBELL, self.ring.pending)
        return command

    def _on_doorbell(self, _value: int) -> None:
        """Device-side command fetch, modelled synchronously: the NPU
        drains the ring, validates DMA targets via the IOMMU, executes
        and bumps the completion counter."""
        if self.handle is None or self._bar is None:
            raise VirtualizationError("doorbell rang on an unbound driver")
        self._bar.set_status(DeviceStatus.RUNNING)
        while True:
            command = self.ring.pop()
            if command is None:
                break
            if command.opcode in (CommandOpcode.MEMCPY_H2D, CommandOpcode.MEMCPY_D2H):
                self.hypervisor.iommu.check_dma(
                    self.handle.vnpu_id, command.guest_addr, command.size
                )
            self.ring.complete(command)
            self._bar.bump_completed()
        self._bar.set_status(DeviceStatus.IDLE)

    def _dma_addr(self, offset: int, size: int) -> int:
        if self.dma_buffer is None:
            raise VirtualizationError("no DMA buffer allocated")
        if offset < 0 or offset + size > self.dma_buffer.size:
            raise VirtualizationError("memcpy outside the DMA buffer")
        return self.dma_buffer.addr + offset

    def _require_bar(self) -> MmioRegisterFile:
        if self._bar is None:
            raise VirtualizationError("driver is not bound to a vNPU")
        return self._bar
