"""MMIO register file for a vNPU's PCIe BAR (paper Fig. 11).

The guest driver controls its vNPU through memory-mapped registers:
doorbells for the command ring, status/completion registers it can poll,
and read-only identity registers describing the vNPU hierarchy ("the
guest NPU driver can query the hierarchy of the vNPU").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.errors import MmioError


class Register(enum.IntEnum):
    """Register offsets within the vNPU BAR."""

    # Identity block (read-only).
    VNPU_ID = 0x00
    NUM_CHIPS = 0x04
    NUM_CORES_PER_CHIP = 0x08
    NUM_MES_PER_CORE = 0x0C
    NUM_VES_PER_CORE = 0x10
    SRAM_BYTES_LO = 0x14
    SRAM_BYTES_HI = 0x18
    HBM_BYTES_LO = 0x1C
    HBM_BYTES_HI = 0x20
    # Control block.
    DOORBELL = 0x40
    IRQ_ENABLE = 0x44
    # Status block (read-only, device-updated).
    STATUS = 0x80
    COMPLETED_LO = 0x84
    COMPLETED_HI = 0x88


class DeviceStatus(enum.IntEnum):
    IDLE = 0
    RUNNING = 1
    FAULTED = 2


@dataclass
class MmioRegisterFile:
    """A vNPU's BAR with access-control semantics."""

    read_only: frozenset = frozenset(
        {
            Register.VNPU_ID,
            Register.NUM_CHIPS,
            Register.NUM_CORES_PER_CHIP,
            Register.NUM_MES_PER_CORE,
            Register.NUM_VES_PER_CORE,
            Register.SRAM_BYTES_LO,
            Register.SRAM_BYTES_HI,
            Register.HBM_BYTES_LO,
            Register.HBM_BYTES_HI,
            Register.STATUS,
            Register.COMPLETED_LO,
            Register.COMPLETED_HI,
        }
    )
    _values: Dict[int, int] = field(default_factory=dict)
    #: Invoked on a doorbell write (device-side hook).
    doorbell_handler: Optional[Callable[[int], None]] = None

    def read(self, offset: int) -> int:
        if offset not in Register.__members__.values() and offset not in self._values:
            raise MmioError(f"read from unmapped MMIO offset 0x{offset:x}")
        return self._values.get(offset, 0)

    def write(self, offset: int, value: int) -> None:
        try:
            register = Register(offset)
        except ValueError as exc:
            raise MmioError(f"write to unmapped MMIO offset 0x{offset:x}") from exc
        if register in self.read_only:
            raise MmioError(f"write to read-only register {register.name}")
        self._values[offset] = value
        if register is Register.DOORBELL and self.doorbell_handler is not None:
            self.doorbell_handler(value)

    # Device-side accessors bypass guest access control.
    def device_write(self, offset: int, value: int) -> None:
        self._values[int(offset)] = value

    def set_status(self, status: DeviceStatus) -> None:
        self.device_write(Register.STATUS, int(status))

    def bump_completed(self) -> None:
        lo = self._values.get(Register.COMPLETED_LO, 0) + 1
        self.device_write(Register.COMPLETED_LO, lo & 0xFFFFFFFF)
        if lo > 0xFFFFFFFF:
            hi = self._values.get(Register.COMPLETED_HI, 0) + 1
            self.device_write(Register.COMPLETED_HI, hi)

    def completed_count(self) -> int:
        lo = self._values.get(Register.COMPLETED_LO, 0)
        hi = self._values.get(Register.COMPLETED_HI, 0)
        return (hi << 32) | lo

    def load_identity(
        self,
        vnpu_id: int,
        num_chips: int,
        num_cores_per_chip: int,
        num_mes: int,
        num_ves: int,
        sram_bytes: int,
        hbm_bytes: int,
    ) -> None:
        self.device_write(Register.VNPU_ID, vnpu_id)
        self.device_write(Register.NUM_CHIPS, num_chips)
        self.device_write(Register.NUM_CORES_PER_CHIP, num_cores_per_chip)
        self.device_write(Register.NUM_MES_PER_CORE, num_mes)
        self.device_write(Register.NUM_VES_PER_CORE, num_ves)
        self.device_write(Register.SRAM_BYTES_LO, sram_bytes & 0xFFFFFFFF)
        self.device_write(Register.SRAM_BYTES_HI, sram_bytes >> 32)
        self.device_write(Register.HBM_BYTES_LO, hbm_bytes & 0xFFFFFFFF)
        self.device_write(Register.HBM_BYTES_HI, hbm_bytes >> 32)
