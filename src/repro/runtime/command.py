"""The command ring (paper Fig. 11).

"During execution, the application issues commands such as memcpy and
compute offloading through the command buffer.  The NPU hardware
directly fetches the commands from the host memory without the
hypervisor intervention."  The ring is a classic single-producer
(driver) / single-consumer (device) circular buffer with head/tail
indices; overflow and malformed commands raise
:class:`~repro.errors.CommandRingError`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.config import MonotonicIds
from repro.errors import CommandRingError

#: Process-wide command sequence-number source; checkpoint restore
#: repositions it (see :class:`repro.config.MonotonicIds`).
_seq = MonotonicIds(1)


class CommandOpcode(enum.Enum):
    MEMCPY_H2D = "memcpy_h2d"
    MEMCPY_D2H = "memcpy_d2h"
    LAUNCH = "launch"
    SYNC = "sync"


@dataclass
class Command:
    opcode: CommandOpcode
    #: Guest address for memcpy source/destination.
    guest_addr: int = 0
    #: Device (vNPU-virtual) address.
    device_addr: int = 0
    size: int = 0
    #: Program handle for LAUNCH.
    program_id: int = 0
    seq: int = field(default_factory=lambda: next(_seq))
    completed: bool = False


class CommandRing:
    """Bounded circular command buffer."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 2:
            raise CommandRingError("ring capacity must be at least 2")
        self.capacity = capacity
        self._slots: List[Optional[Command]] = [None] * capacity
        self._head = 0  # next slot the device consumes
        self._tail = 0  # next slot the driver fills
        self._count = 0

    # ------------------------------------------------------------------
    # Producer (guest driver)
    # ------------------------------------------------------------------
    def push(self, command: Command) -> int:
        if self._count == self.capacity:
            raise CommandRingError("command ring overflow")
        if command.size < 0:
            raise CommandRingError("negative command size")
        slot = self._tail
        self._slots[slot] = command
        self._tail = (self._tail + 1) % self.capacity
        self._count += 1
        return slot

    # ------------------------------------------------------------------
    # Consumer (device)
    # ------------------------------------------------------------------
    def pop(self) -> Optional[Command]:
        if self._count == 0:
            return None
        command = self._slots[self._head]
        if command is None:
            raise CommandRingError(
                f"ring slot {self._head} empty with {self._count} pending"
            )
        self._slots[self._head] = None
        self._head = (self._head + 1) % self.capacity
        self._count -= 1
        return command

    def complete(self, command: Command) -> None:
        if command.completed:
            raise CommandRingError(f"command {command.seq} completed twice")
        command.completed = True

    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        return self._count

    @property
    def is_empty(self) -> bool:
        return self._count == 0

    @property
    def is_full(self) -> bool:
        return self._count == self.capacity
