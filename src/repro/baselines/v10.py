"""V10: temporal sharing of all MEs/VEs with operator-level preemption.

Models the paper's strongest baseline (V10, ISCA'23).  Workloads are
compiled with the traditional VLIW-style ISA, so an ME operator couples
the control flow of the whole ME array: while it runs, *no other ME
operator can execute* -- only VE-only operators from collocated vNPUs
proceed concurrently on the vector engines (paper SectionV-A).  This
creates the "false contention" Neu10 eliminates: an operator that cannot
fill every ME still blocks them all.

Fairness is priority-based and preemptive at operator granularity: when
a waiting vNPU's service deficit exceeds a threshold, the running ME
operator is preempted (paying the context-save penalty on each coupled
engine).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.sim.scheduler_base import Decision, ExecUnit, SchedulerBase, UnitKind, UnitState
from repro.sim.sched_static import allocate_tenant_ve

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator, Tenant

#: Service imbalance (cycles) that triggers an operator preemption.
#: V10 schedules at *operator* granularity: fairness normally acts when
#: an operator completes, and a running operator is forcibly preempted
#: only on a gross imbalance.  This is what makes V10's tail latency
#: fragile under "complex inter-operator dependencies and imbalanced
#: operator lengths" (paper SectionV-B).
DEFAULT_PREEMPT_THRESHOLD = 400_000.0
#: How often to re-evaluate fairness while the core is contended.
DEFAULT_CHECK_PERIOD = 25_000.0


class V10Scheduler(SchedulerBase):
    """Operator-level temporal sharing of the ME array."""

    name = "v10"

    def __init__(
        self,
        preempt_threshold: float = DEFAULT_PREEMPT_THRESHOLD,
        check_period: float = DEFAULT_CHECK_PERIOD,
    ) -> None:
        self.preempt_threshold = preempt_threshold
        self.check_period = check_period

    # ------------------------------------------------------------------
    def state_fingerprint(self, sim: "Simulator"):
        """Not memoisable: the preemption trigger compares accumulated
        per-tenant service deficits, which change continuously."""
        return None

    # ------------------------------------------------------------------
    def decide(self, sim: "Simulator") -> Decision:
        decision = Decision()
        running_me = self._running_me_unit(sim)
        waiting = self._waiting_me_tenants(sim, running_me)

        if running_me is not None and waiting:
            owner_served = sim.stats.me_busy_per_tenant.get(running_me.owner, 0.0)
            worst = min(
                sim.stats.me_busy_per_tenant.get(t.tenant_id, 0.0)
                / max(t.priority, 1e-9)
                for t in waiting
            )
            if owner_served / max(self._priority_of(sim, running_me.owner), 1e-9) - worst > self.preempt_threshold:
                decision.preempt.append(running_me)
                beneficiary = min(
                    waiting,
                    key=lambda t: sim.stats.me_busy_per_tenant.get(t.tenant_id, 0.0),
                )
                decision.reclaim_owners[running_me] = beneficiary.tenant_id
                running_me = None

        penalty = sum(max(1, u.granted_me) for u in decision.preempt)
        capacity = sim.available_mes - penalty

        if running_me is None:
            running_me = self._pick_me_unit(sim, capacity, decision.preempt)
        if running_me is not None:
            # The VLIW ISA couples the whole ME array: the operator holds
            # its compiled engine block and nothing else may use MEs.
            decision.running_me[running_me] = running_me.me_engines_needed

        self._allocate_ves(sim, decision, running_me)

        contended = bool(self._waiting_me_tenants(sim, running_me))
        if contended:
            decision.next_decision_at = sim.now + self.check_period
        return decision

    # ------------------------------------------------------------------
    @staticmethod
    def _running_me_unit(sim: "Simulator") -> Optional[ExecUnit]:
        for tenant in sim.tenants:
            for unit in tenant.active_units:
                if unit.state is UnitState.RUNNING and unit.is_me_unit:
                    return unit
        return None

    @staticmethod
    def _priority_of(sim: "Simulator", tenant_id: int) -> float:
        for tenant in sim.tenants:
            if tenant.tenant_id == tenant_id:
                return tenant.priority
        return 1.0

    def _waiting_me_tenants(
        self, sim: "Simulator", running_me: Optional[ExecUnit]
    ) -> List["Tenant"]:
        out = []
        for tenant in sim.tenants:
            if running_me is not None and tenant.tenant_id == running_me.owner:
                continue
            if any(
                u.is_me_unit and not u.done and u.state is not UnitState.RUNNING
                for u in tenant.active_units
            ):
                out.append(tenant)
        return out

    def _pick_me_unit(
        self,
        sim: "Simulator",
        capacity: int,
        exclude: List[ExecUnit] = (),
    ) -> Optional[ExecUnit]:
        """Least-served tenant's pending ME operator, if it fits the
        engines not frozen by a reclaim window.

        ``exclude`` holds units this decision already preempts: they are
        still RUNNING in ``active_units`` when this runs, and re-picking
        one would make the decision preempt and run the same unit.  The
        preempted tenant's head operator stalls, and in-order execution
        stalls the rest of that tenant with it.
        """
        best: Optional[ExecUnit] = None
        best_score = float("inf")
        for tenant in sim.tenants:
            for unit in tenant.active_units:
                if not unit.is_me_unit or unit.done:
                    continue
                if unit in exclude:
                    break
                if unit.me_engines_needed > capacity:
                    continue
                score = sim.stats.me_busy_per_tenant.get(
                    tenant.tenant_id, 0.0
                ) / max(tenant.priority, 1e-9)
                if score < best_score:
                    best, best_score = unit, score
                break  # operators execute in order within a tenant
        return best

    def _allocate_ves(
        self,
        sim: "Simulator",
        decision: Decision,
        running_me: Optional[ExecUnit],
    ) -> None:
        """VE-only operators from every tenant share the vector engines;
        the running ME operator's embedded stream goes first."""
        remaining = float(sim.core.num_ves)
        if running_me is not None and running_me.ve_rate > 0:
            need = running_me.ve_rate * running_me.me_engines_needed
            got = min(remaining, need)
            if got > 0:
                decision.ve_alloc[running_me] = got
                remaining -= got
        ve_units: List[ExecUnit] = []
        for tenant in sim.tenants:
            for unit in tenant.active_units:
                if unit.is_me_unit or unit.done:
                    continue
                if unit.kind in (UnitKind.VLIW_VE, UnitKind.VE_UTOP):
                    ve_units.append(unit)
        ve_units.sort(key=lambda u: u.unit_id)
        for unit in ve_units:
            if remaining <= 1e-9:
                break
            got = min(remaining, float(unit.parallelism))
            if got > 0:
                decision.ve_alloc[unit] = got
                remaining -= got
