"""PMT: preemptive temporal sharing of the whole NPU core.

Models PREMA-style multi-tasking (paper baseline "PMT [16]"): exactly one
vNPU owns the entire core at a time; a preemptive fair scheduler rotates
ownership on a quantum, weighted by priority.  Context switches preempt
every running engine and pay the ME context-save penalty, and the incoming
tenant additionally waits for the reclaim window -- the "high preemption
overhead" the paper attributes to coarse-grained time-sharing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.sim.scheduler_base import Decision, ExecUnit, SchedulerBase, UnitState
from repro.sim.sched_static import allocate_tenant_ve, sort_me_candidates

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator, Tenant

#: Default scheduling quantum in cycles (~48 us at 1.05 GHz).
DEFAULT_QUANTUM = 50_000.0


class PmtScheduler(SchedulerBase):
    """Whole-core preemptive temporal sharing."""

    name = "pmt"

    def __init__(self, quantum_cycles: float = DEFAULT_QUANTUM) -> None:
        self.quantum_cycles = quantum_cycles
        self._current: Optional[int] = None
        self._quantum_end = 0.0

    # ------------------------------------------------------------------
    def state_fingerprint(self, sim: "Simulator"):
        """Not memoisable: ownership rotates on a wall-clock quantum and
        the next pick depends on accumulated service cycles."""
        return None

    # ------------------------------------------------------------------
    def decide(self, sim: "Simulator") -> Decision:
        decision = Decision()
        candidates = [t for t in sim.tenants if self._has_work(t)]
        if not candidates:
            return decision

        current = self._tenant_by_id(sim, self._current)
        switch = (
            current is None
            or not self._has_work(current)
            or (sim.now >= self._quantum_end - 1e-9 and len(candidates) > 1)
        )
        if switch:
            nxt = self._pick_next(sim, candidates, current)
            if current is not None and nxt is not current:
                self._preempt_tenant(decision, current, nxt.tenant_id)
            current = nxt
            self._current = current.tenant_id
            self._quantum_end = sim.now + self.quantum_cycles

        penalty = sum(max(1, u.granted_me) for u in decision.preempt)
        capacity = sim.available_mes - penalty

        granted: List[ExecUnit] = []
        used = 0
        for unit in sort_me_candidates(self.ready_me_units(current)):
            need = unit.me_engines_needed
            if used + need > capacity:
                continue
            decision.running_me[unit] = need
            granted.append(unit)
            used += need
        decision.ve_alloc.update(
            allocate_tenant_ve(current, granted, float(sim.core.num_ves))
        )
        if len(candidates) > 1:
            decision.next_decision_at = self._quantum_end
        return decision

    # ------------------------------------------------------------------
    @staticmethod
    def _has_work(tenant: "Tenant") -> bool:
        return any(not u.done for u in tenant.active_units)

    @staticmethod
    def _tenant_by_id(sim: "Simulator", tenant_id: Optional[int]) -> Optional["Tenant"]:
        if tenant_id is None:
            return None
        for tenant in sim.tenants:
            if tenant.tenant_id == tenant_id:
                return tenant
        return None

    def _pick_next(
        self, sim: "Simulator", candidates: List["Tenant"], current: Optional["Tenant"]
    ) -> "Tenant":
        """Least-service-first, weighted by priority; avoid re-picking the
        expiring tenant when someone else is waiting.

        Service is *ME cycles actually received*
        (``stats.me_busy_per_tenant``), not time spent with a request in
        flight: under closed-loop serving every collocated tenant is
        active every cycle, so an active-time key ties permanently and
        the rotation degenerates to pool order -- with three or more
        tenants that starves whoever the order never reaches.
        """
        pool = [t for t in candidates if t is not current] or candidates
        served = sim.stats.me_busy_per_tenant
        return min(
            pool,
            key=lambda t: served.get(t.tenant_id, 0.0) / max(t.priority, 1e-9),
        )

    def _preempt_tenant(
        self, decision: Decision, tenant: "Tenant", beneficiary: int
    ) -> None:
        for unit in tenant.active_units:
            if unit.state is UnitState.RUNNING and unit.is_me_unit:
                decision.preempt.append(unit)
                decision.reclaim_owners[unit] = beneficiary
