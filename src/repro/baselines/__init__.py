"""Baseline NPU sharing schemes the paper compares against (SectionV-A).

- :class:`repro.baselines.pmt.PmtScheduler` -- PMT (PREMA-like):
  preemptive temporal sharing of the *entire* NPU core with fair
  quantum-based switching.
- :class:`repro.baselines.v10.V10Scheduler` -- V10 (ISCA'23): temporal
  sharing of all MEs/VEs with priority-based operator preemption; the
  VLIW ISA couples every ME, so an ME operator blocks the whole ME array
  even when it cannot fill it.
- Neu10-NH (static spatial partitioning, MIG-like) lives in
  :mod:`repro.sim.sched_static` and is re-exported here.
"""

from repro.baselines.pmt import PmtScheduler
from repro.baselines.v10 import V10Scheduler
from repro.sim.sched_static import StaticPartitionScheduler

__all__ = ["PmtScheduler", "StaticPartitionScheduler", "V10Scheduler"]
