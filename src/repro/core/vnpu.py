"""The vNPU abstraction (paper SectionIII-A, Fig. 10).

A vNPU is a virtual NPU device exposed to a guest VM as a PCIe device.
Its configuration mirrors the hierarchy of a physical board::

    struct vNPU_Config {
        size_t num_chips;          size_t num_cores_per_chip;
        size_t num_MEs_per_core;   size_t num_VEs_per_core;
        size_t sram_size_per_core; size_t mem_size_per_core;
    }

The instance tracks the lifecycle the hypervisor drives: requested ->
mapped -> active -> destroyed, with explicit transition validation so
control-plane bugs surface as :class:`~repro.errors.LifecycleError`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.config import MonotonicIds, NpuCoreConfig
from repro.errors import ConfigError, LifecycleError

#: Process-wide vNPU id source; checkpoint restore repositions it
#: (see :class:`repro.config.MonotonicIds`).
_vnpu_ids = MonotonicIds(1)


@dataclass(frozen=True)
class VnpuConfig:
    """User-visible vNPU configuration (paper Fig. 10)."""

    num_chips: int = 1
    num_cores_per_chip: int = 1
    num_mes_per_core: int = 1
    num_ves_per_core: int = 1
    sram_bytes_per_core: int = 0
    hbm_bytes_per_core: int = 0

    def __post_init__(self) -> None:
        if self.num_chips < 1 or self.num_cores_per_chip < 1:
            raise ConfigError("a vNPU needs at least one chip and one core")
        # "Each vNPU will have at least one ME and one VE" (SectionIII-B).
        if self.num_mes_per_core < 1 or self.num_ves_per_core < 1:
            raise ConfigError("a vNPU core needs at least one ME and one VE")
        if self.sram_bytes_per_core < 0 or self.hbm_bytes_per_core < 0:
            raise ConfigError("memory sizes cannot be negative")

    @property
    def total_cores(self) -> int:
        return self.num_chips * self.num_cores_per_chip

    @property
    def total_mes(self) -> int:
        return self.total_cores * self.num_mes_per_core

    @property
    def total_ves(self) -> int:
        return self.total_cores * self.num_ves_per_core

    @property
    def total_eus(self) -> int:
        """Execution units = MEs + VEs; what the user pays for."""
        return self.total_mes + self.total_ves

    def validate_against(self, core: NpuCoreConfig) -> None:
        """The maximum vNPU size is capped by the physical NPU size."""
        if self.num_mes_per_core > core.num_mes:
            raise ConfigError(
                f"vNPU wants {self.num_mes_per_core} MEs/core, "
                f"physical core has {core.num_mes}"
            )
        if self.num_ves_per_core > core.num_ves:
            raise ConfigError(
                f"vNPU wants {self.num_ves_per_core} VEs/core, "
                f"physical core has {core.num_ves}"
            )
        if self.sram_bytes_per_core > core.sram_bytes:
            raise ConfigError("vNPU SRAM exceeds physical SRAM")
        if self.hbm_bytes_per_core > core.hbm_bytes:
            raise ConfigError("vNPU HBM exceeds physical HBM")


class VnpuState(enum.Enum):
    REQUESTED = "requested"
    MAPPED = "mapped"
    ACTIVE = "active"
    DESTROYED = "destroyed"


_VALID_TRANSITIONS = {
    VnpuState.REQUESTED: {VnpuState.MAPPED, VnpuState.DESTROYED},
    VnpuState.MAPPED: {VnpuState.ACTIVE, VnpuState.DESTROYED},
    VnpuState.ACTIVE: {VnpuState.MAPPED, VnpuState.DESTROYED},
    VnpuState.DESTROYED: set(),
}


@dataclass
class VnpuInstance:
    """A live vNPU with lifecycle state and placement."""

    config: VnpuConfig
    owner: str = "tenant"
    priority: float = 1.0
    vnpu_id: int = field(default_factory=lambda: next(_vnpu_ids))
    state: VnpuState = VnpuState.REQUESTED
    #: Physical core index assigned by the mapper (single-core vNPUs).
    pnpu_core: Optional[int] = None
    #: Base SRAM/HBM segment indices assigned at mapping time.
    sram_segment_base: Optional[int] = None
    hbm_segment_base: Optional[int] = None

    def transition(self, new_state: VnpuState) -> None:
        if new_state not in _VALID_TRANSITIONS[self.state]:
            raise LifecycleError(
                f"vNPU {self.vnpu_id}: illegal transition "
                f"{self.state.value} -> {new_state.value}"
            )
        self.state = new_state

    @property
    def is_live(self) -> bool:
        return self.state in (VnpuState.MAPPED, VnpuState.ACTIVE)

    def describe(self) -> str:
        cfg = self.config
        return (
            f"vNPU#{self.vnpu_id}[{cfg.num_mes_per_core}ME+"
            f"{cfg.num_ves_per_core}VE x {cfg.total_cores} cores, "
            f"{self.state.value}]"
        )
