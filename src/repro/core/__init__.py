"""Neu10 core: the vNPU abstraction and its resource management.

- :mod:`repro.core.vnpu` -- the vNPU configuration (paper Fig. 10) and
  instance lifecycle.
- :mod:`repro.core.allocator` -- the analytic ME/VE allocator
  (paper SectionIII-B, Eqs. 1-4).
- :mod:`repro.core.mapper` -- vNPU -> pNPU placement policies
  (paper SectionIII-C).
- :mod:`repro.core.manager` -- the vNPU manager (host kernel module in
  the paper's KVM integration): resource tracking, create/resize/free.
"""

from repro.core.allocator import (
    AllocationResult,
    VnpuAllocator,
    optimal_me_ve_ratio,
    split_eu_budget,
    utilization,
)
from repro.core.manager import VnpuManager
from repro.core.mapper import MappingMode, PnpuState, VnpuMapper
from repro.core.vnpu import VnpuConfig, VnpuInstance, VnpuState

__all__ = [
    "AllocationResult",
    "MappingMode",
    "PnpuState",
    "VnpuAllocator",
    "VnpuConfig",
    "VnpuInstance",
    "VnpuManager",
    "VnpuMapper",
    "VnpuState",
    "optimal_me_ve_ratio",
    "split_eu_budget",
    "utilization",
]
