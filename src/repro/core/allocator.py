"""The vNPU resource allocator (paper SectionIII-B, Eqs. 1-4).

Users specify a total execution-unit (EU) budget; the allocator picks
the ME:VE split that maximises EU utilisation for the workload, using
the compile-time profile ratios ``m`` (ME active / total) and ``v`` (VE
active / total):

- Normalised execution time on ``nm`` MEs and ``nv`` VEs (Eq. 1)::

      T = (1 - v)/nm + (1 - m)/nv + (m + v - 1)/min(nm, nv)

- EU utilisation (Eq. 2) is the ratio of the hypothetical time
  ``(m + v)/(nm + nv)`` to ``T``.

- The closed-form optimum (Eq. 4)::

      k = nm/nv = sqrt(m / (1 - m))       if m < 0.5
                = sqrt((1 - v) / v)       if v < 0.5
                = 1                       if m >= 0.5 and v >= 0.5

Every vNPU gets at least one ME and one VE.  Memory sizing follows the
paper's defaults: the compiler-estimated HBM footprint, and SRAM
proportional to the ME count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.compiler.profiler import WorkloadProfile
from repro.config import NpuCoreConfig, SRAM_SEGMENT_BYTES, HBM_SEGMENT_BYTES
from repro.core.vnpu import VnpuConfig
from repro.errors import AllocationError


def execution_time(m: float, v: float, nm: int, nv: int) -> float:
    """Eq. 1: normalised execution time on ``nm`` MEs and ``nv`` VEs."""
    _check_profile(m, v)
    if nm < 1 or nv < 1:
        raise AllocationError("need at least one ME and one VE")
    return (1.0 - v) / nm + (1.0 - m) / nv + (m + v - 1.0) / min(nm, nv)


def utilization(m: float, v: float, nm: int, nv: int) -> float:
    """Eq. 2: total EU utilisation of the (nm, nv) configuration."""
    hypothetical = (m + v) / (nm + nv)
    return hypothetical / execution_time(m, v, nm, nv)


def optimal_me_ve_ratio(m: float, v: float) -> float:
    """Eq. 4: the utilisation-maximising ratio ``k = nm / nv``."""
    _check_profile(m, v)
    if m >= 0.5 and v >= 0.5:
        return 1.0
    if m < 0.5:
        return math.sqrt(m / (1.0 - m))
    if v <= 0.0:
        # Pure-ME workload: as many MEs as the budget allows.
        return math.inf
    return math.sqrt((1.0 - v) / v)


def split_eu_budget(m: float, v: float, total_eus: int) -> Tuple[int, int]:
    """Split ``total_eus`` into (num_MEs, num_VEs) following Eq. 4.

    The continuous optimum is rounded to integers by scanning the two
    neighbouring splits and keeping the one with higher Eq.-2
    utilisation; each side gets at least one unit.
    """
    if total_eus < 2:
        raise AllocationError("a vNPU needs at least 2 EUs (1 ME + 1 VE)")
    k = optimal_me_ve_ratio(m, v)
    if math.isinf(k):
        nm_real = float(total_eus - 1)
    else:
        nm_real = total_eus * k / (1.0 + k)
    best: Optional[Tuple[int, int]] = None
    best_util = -1.0
    for nm in {
        max(1, min(total_eus - 1, math.floor(nm_real))),
        max(1, min(total_eus - 1, math.ceil(nm_real))),
    }:
        nv = total_eus - nm
        util = utilization(m, v, nm, nv)
        if util > best_util:
            best, best_util = (nm, nv), util
    assert best is not None
    return best


def _check_profile(m: float, v: float) -> None:
    if not 0.0 <= m <= 1.0 or not 0.0 <= v <= 1.0:
        raise AllocationError(f"profile ratios must lie in [0, 1]: m={m}, v={v}")
    if m + v < 1.0 - 1e-9:
        raise AllocationError(
            "m + v must be >= 1 (at least one engine type is always active); "
            f"got m={m}, v={v}"
        )


@dataclass(frozen=True)
class AllocationResult:
    """Outcome of allocating a vNPU for one workload."""

    num_mes: int
    num_ves: int
    sram_bytes: int
    hbm_bytes: int
    predicted_utilization: float
    m: float
    v: float

    def as_vnpu_config(self) -> VnpuConfig:
        return VnpuConfig(
            num_chips=1,
            num_cores_per_chip=1,
            num_mes_per_core=self.num_mes,
            num_ves_per_core=self.num_ves,
            sram_bytes_per_core=self.sram_bytes,
            hbm_bytes_per_core=self.hbm_bytes,
        )


class VnpuAllocator:
    """Compile-time tool that sizes a vNPU for a workload profile."""

    def __init__(self, core: NpuCoreConfig) -> None:
        self.core = core

    def allocate(
        self,
        profile: WorkloadProfile,
        total_eus: int,
        hbm_footprint_bytes: Optional[int] = None,
    ) -> AllocationResult:
        """Pick the ME/VE split and memory sizes for ``total_eus``.

        ``hbm_footprint_bytes`` defaults to the compiler estimate (the
        workload's total weight + activation traffic is a proxy here).
        SRAM is allocated proportionally to the ME share -- "more MEs
        usually indicate larger tile sizes" (SectionIII-B) -- in whole
        2 MB protection segments.
        """
        m, v = profile.m, profile.v
        num_mes, num_ves = split_eu_budget(m, v, total_eus)
        num_mes = min(num_mes, self.core.num_mes)
        num_ves = min(num_ves, self.core.num_ves)

        me_share = num_mes / self.core.num_mes
        sram_segments = max(1, int(self.core.num_sram_segments * me_share))
        sram_bytes = sram_segments * SRAM_SEGMENT_BYTES

        if hbm_footprint_bytes is None:
            hbm_footprint_bytes = int(
                min(profile.total_hbm_bytes, self.core.hbm_bytes)
            )
        hbm_segments = max(
            1, math.ceil(hbm_footprint_bytes / HBM_SEGMENT_BYTES)
        )
        hbm_segments = min(hbm_segments, self.core.num_hbm_segments)
        hbm_bytes = hbm_segments * HBM_SEGMENT_BYTES

        return AllocationResult(
            num_mes=num_mes,
            num_ves=num_ves,
            sram_bytes=sram_bytes,
            hbm_bytes=hbm_bytes,
            predicted_utilization=utilization(m, v, num_mes, num_ves),
            m=m,
            v=v,
        )

    def sweep(self, profile: WorkloadProfile, max_eus: int) -> "list[AllocationResult]":
        """Allocation for every EU budget in [2, max_eus] (paper Fig. 12)."""
        return [self.allocate(profile, eus) for eus in range(2, max_eus + 1)]
