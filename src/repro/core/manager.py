"""The vNPU manager (paper SectionIII-F).

In the paper this is a host kernel module behind three hypercalls:
create a vNPU, change its configuration, deallocate it.  It "tracks the
allocated and free resources (MEs/VEs, SRAM, HBM) of all physical NPUs
on the host machine and implements the vNPU mapping policies".  Here it
composes the allocator and the mapper and owns the instance registry;
:mod:`repro.runtime.hypervisor` routes guest hypercalls to it.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.compiler.profiler import WorkloadProfile
from repro.config import NpuCoreConfig
from repro.core.allocator import VnpuAllocator
from repro.core.mapper import MappingMode, VnpuMapper
from repro.core.vnpu import VnpuConfig, VnpuInstance, VnpuState
from repro.errors import AllocationError


class VnpuManager:
    """Registry + policy engine for all vNPUs on one host."""

    def __init__(
        self,
        cores: List[NpuCoreConfig],
        mode: MappingMode = MappingMode.SPATIAL,
    ) -> None:
        if not cores:
            raise AllocationError("manager needs at least one physical core")
        self.cores = list(cores)
        self.allocator = VnpuAllocator(cores[0])
        self.mapper = VnpuMapper(cores, mode=mode)
        self._instances: Dict[int, VnpuInstance] = {}

    # ------------------------------------------------------------------
    # Lifecycle operations (the three hypercalls)
    # ------------------------------------------------------------------
    def create(
        self,
        config: VnpuConfig,
        owner: str = "tenant",
        priority: float = 1.0,
    ) -> VnpuInstance:
        """Hypercall 1: create and map a new vNPU."""
        vnpu = VnpuInstance(config=config, owner=owner, priority=priority)
        self.mapper.map(vnpu)
        self._instances[vnpu.vnpu_id] = vnpu
        return vnpu

    def create_for_workload(
        self,
        profile: WorkloadProfile,
        total_eus: int,
        owner: str = "tenant",
        priority: float = 1.0,
        hbm_footprint_bytes: Optional[int] = None,
    ) -> VnpuInstance:
        """Create a vNPU sized by the allocator for a profiled workload
        ("Neu10 can also learn an optimized vNPU configuration for a DNN
        workload with ML compilers")."""
        result = self.allocator.allocate(
            profile, total_eus, hbm_footprint_bytes=hbm_footprint_bytes
        )
        return self.create(result.as_vnpu_config(), owner=owner, priority=priority)

    def reconfigure(self, vnpu_id: int, config: VnpuConfig) -> VnpuInstance:
        """Hypercall 2: change the configuration of an existing vNPU.

        Implemented as unmap + remap with the new configuration; the
        vNPU id is preserved.
        """
        old = self.get(vnpu_id)
        was_active = old.state is VnpuState.ACTIVE
        if was_active:
            old.transition(VnpuState.MAPPED)
        self.mapper.unmap(old)
        del self._instances[vnpu_id]
        replacement = VnpuInstance(
            config=config, owner=old.owner, priority=old.priority,
            vnpu_id=vnpu_id,
        )
        try:
            self.mapper.map(replacement)
        except Exception:
            # Remap the old configuration (its resources were just
            # freed, so this cannot fail) -- a rejected reconfigure must
            # not destroy the tenant's live vNPU.  ``unmap`` retired the
            # old instance object, so rebuild one under the same id.
            restored = VnpuInstance(
                config=old.config, owner=old.owner, priority=old.priority,
                vnpu_id=vnpu_id,
            )
            self.mapper.map(restored)
            if was_active:
                restored.transition(VnpuState.ACTIVE)
            self._instances[vnpu_id] = restored
            raise
        if was_active:
            replacement.transition(VnpuState.ACTIVE)
        self._instances[vnpu_id] = replacement
        return replacement

    def destroy(self, vnpu_id: int) -> None:
        """Hypercall 3: deallocate a vNPU and clean up its context."""
        vnpu = self.get(vnpu_id)
        if vnpu.state is VnpuState.ACTIVE:
            vnpu.transition(VnpuState.MAPPED)
        self.mapper.unmap(vnpu)
        del self._instances[vnpu_id]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def get(self, vnpu_id: int) -> VnpuInstance:
        if vnpu_id not in self._instances:
            raise AllocationError(f"unknown vNPU id {vnpu_id}")
        return self._instances[vnpu_id]

    def instances(self) -> List[VnpuInstance]:
        return list(self._instances.values())

    def collocated_with(self, vnpu_id: int) -> List[VnpuInstance]:
        """vNPUs sharing the same physical core."""
        me = self.get(vnpu_id)
        return [
            v
            for v in self._instances.values()
            if v.vnpu_id != vnpu_id and v.pnpu_core == me.pnpu_core
        ]

    def free_mes(self, core_index: int) -> int:
        pnpu = self.mapper.pnpus[core_index]
        return pnpu.core.num_mes - pnpu.mes_committed

    def free_ves(self, core_index: int) -> int:
        pnpu = self.mapper.pnpus[core_index]
        return pnpu.core.num_ves - pnpu.ves_committed
