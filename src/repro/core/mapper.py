"""vNPU -> pNPU mapping (paper SectionIII-C).

Two mapping modes:

- **hardware-isolated (spatial)**: a vNPU gets dedicated EUs and memory;
  collocation is admitted only while the physical core's resources are
  not exceeded.
- **software-isolated (temporal)**: vNPUs may oversubscribe a core; the
  mapper load-balances by assigning each new vNPU to the pNPU with the
  least total resource requirement.

The mapper also "attempts to balance the number of allocated EUs and the
size of allocated memory", so EU-heavy/memory-light vNPUs end up
collocated with EU-light/memory-heavy ones (greedy policy).  Memory is
carved out of fixed-size protection segments (2 MB SRAM / 1 GB HBM); the
segment bases recorded on the instance drive the IOMMU/segmentation
checks in :mod:`repro.runtime.iommu`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.config import (
    HBM_SEGMENT_BYTES,
    NpuCoreConfig,
    SRAM_SEGMENT_BYTES,
)
from repro.core.vnpu import VnpuInstance, VnpuState
from repro.errors import MappingError


class MappingMode(enum.Enum):
    SPATIAL = "hardware-isolated"
    TEMPORAL = "software-isolated"


@dataclass
class PnpuState:
    """Book-keeping for one physical NPU core."""

    core_index: int
    core: NpuCoreConfig
    mode: MappingMode = MappingMode.SPATIAL
    resident: List[VnpuInstance] = field(default_factory=list)
    sram_segments_used: int = 0
    hbm_segments_used: int = 0

    @property
    def mes_committed(self) -> int:
        return sum(v.config.num_mes_per_core for v in self.resident)

    @property
    def ves_committed(self) -> int:
        return sum(v.config.num_ves_per_core for v in self.resident)

    @property
    def load_score(self) -> float:
        """Fraction of the core's resources already committed (EUs and
        memory weighted equally), used for least-loaded placement."""
        eu_frac = (self.mes_committed + self.ves_committed) / (
            self.core.num_mes + self.core.num_ves
        )
        mem_frac = 0.0
        if self.core.num_hbm_segments:
            mem_frac = self.hbm_segments_used / self.core.num_hbm_segments
        return (eu_frac + mem_frac) / 2.0

    def fits_spatially(self, vnpu: VnpuInstance) -> bool:
        cfg = vnpu.config
        if self.mes_committed + cfg.num_mes_per_core > self.core.num_mes:
            return False
        if self.ves_committed + cfg.num_ves_per_core > self.core.num_ves:
            return False
        return self._fits_memory(vnpu)

    def _fits_memory(self, vnpu: VnpuInstance) -> bool:
        cfg = vnpu.config
        sram_segs = _segments(cfg.sram_bytes_per_core, SRAM_SEGMENT_BYTES)
        hbm_segs = _segments(cfg.hbm_bytes_per_core, HBM_SEGMENT_BYTES)
        if self.sram_segments_used + sram_segs > self.core.num_sram_segments:
            return False
        if self.hbm_segments_used + hbm_segs > self.core.num_hbm_segments:
            return False
        return True


def _segments(nbytes: int, segment_bytes: int) -> int:
    if nbytes <= 0:
        return 0
    return -(-nbytes // segment_bytes)


class VnpuMapper:
    """Places vNPUs onto a pool of physical NPU cores."""

    def __init__(
        self,
        cores: List[NpuCoreConfig],
        mode: MappingMode = MappingMode.SPATIAL,
    ) -> None:
        if not cores:
            raise MappingError("mapper needs at least one physical core")
        self.mode = mode
        self.pnpus: List[PnpuState] = [
            PnpuState(core_index=i, core=core, mode=mode)
            for i, core in enumerate(cores)
        ]
        self._placement: Dict[int, int] = {}

    # ------------------------------------------------------------------
    def map(self, vnpu: VnpuInstance) -> PnpuState:
        """Place ``vnpu``; returns its pNPU.  Raises when infeasible."""
        if vnpu.state is not VnpuState.REQUESTED:
            raise MappingError(f"{vnpu.describe()} is not in REQUESTED state")
        vnpu.config.validate_against(self.pnpus[0].core)
        target = self._choose(vnpu)
        if target is None:
            raise MappingError(
                f"no pNPU can host {vnpu.describe()} under {self.mode.value}"
            )
        self._commit(target, vnpu)
        return target

    def unmap(self, vnpu: VnpuInstance) -> None:
        if vnpu.vnpu_id not in self._placement:
            raise MappingError(f"{vnpu.describe()} is not mapped")
        pnpu = self.pnpus[self._placement.pop(vnpu.vnpu_id)]
        pnpu.resident.remove(vnpu)
        cfg = vnpu.config
        pnpu.sram_segments_used -= _segments(cfg.sram_bytes_per_core, SRAM_SEGMENT_BYTES)
        pnpu.hbm_segments_used -= _segments(cfg.hbm_bytes_per_core, HBM_SEGMENT_BYTES)
        vnpu.transition(VnpuState.DESTROYED)

    def placement_of(self, vnpu: VnpuInstance) -> Optional[int]:
        return self._placement.get(vnpu.vnpu_id)

    # ------------------------------------------------------------------
    def _choose(self, vnpu: VnpuInstance) -> Optional[PnpuState]:
        if self.mode is MappingMode.SPATIAL:
            candidates = [p for p in self.pnpus if p.fits_spatially(vnpu)]
        else:
            # Temporal sharing allows EU oversubscription but memory is
            # still partitioned.
            candidates = [p for p in self.pnpus if p._fits_memory(vnpu)]
        if not candidates:
            return None
        # Greedy balance of EU and memory pressure: pick the pNPU with
        # the least combined load ("assigns a new vNPU to the pNPU that
        # suffers the least resource requirement").
        return min(candidates, key=lambda p: (p.load_score, p.core_index))

    def _commit(self, pnpu: PnpuState, vnpu: VnpuInstance) -> None:
        cfg = vnpu.config
        vnpu.sram_segment_base = pnpu.sram_segments_used
        vnpu.hbm_segment_base = pnpu.hbm_segments_used
        pnpu.sram_segments_used += _segments(cfg.sram_bytes_per_core, SRAM_SEGMENT_BYTES)
        pnpu.hbm_segments_used += _segments(cfg.hbm_bytes_per_core, HBM_SEGMENT_BYTES)
        pnpu.resident.append(vnpu)
        vnpu.pnpu_core = pnpu.core_index
        vnpu.transition(VnpuState.MAPPED)
        self._placement[vnpu.vnpu_id] = pnpu.core_index
