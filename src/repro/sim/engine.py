"""The epoch-driven simulation engine.

See :mod:`repro.sim` for the fluid execution model.  The engine owns:

- tenants (vNPU + compiled workload + request stream),
- the reclaim list (engines paying the ME context-switch penalty after a
  preemption, paper SectionIII-G: 256 cycles for a 128x128 array),
- the main loop: ask the scheduler for a :class:`Decision`, validate it
  against physical capacity, compute progress rates (HBM max-min fair
  sharing + embedded-VE coupling), advance to the next event, handle
  completions and request lifecycle.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence

from repro.compiler.lowering import CompiledGraph, CompiledOp
from repro.config import NpuCoreConfig
from repro.errors import SimulationError
from repro.isa.utop import UTopKind
from repro.sim.hbm import hierarchical_fair_factors, slowdown_factors
from repro.sim.scheduler_base import Decision, ExecUnit, SchedulerBase, UnitKind, UnitState
from repro.sim.stats import SimStats

#: Numerical tolerance for completion checks and capacity validation.
EPS = 1e-6
#: Lower bound for any epoch to guarantee forward progress.
MIN_DELTA = 1e-9


@dataclass
class Request:
    request_id: int
    issue_cycle: float
    start_cycle: float = 0.0
    finish_cycle: float = 0.0

    @property
    def latency(self) -> float:
        return self.finish_cycle - self.issue_cycle

    @property
    def service_time(self) -> float:
        return self.finish_cycle - self.start_cycle

    @property
    def queueing_delay(self) -> float:
        """Time spent waiting for admission (zero under closed loop)."""
        return self.start_cycle - self.issue_cycle


@dataclass
class ReclaimTimer:
    """One engine paying the preemption penalty until ``ready_at``."""

    ready_at: float
    owner: int


class Tenant:
    """One vNPU instance executing a compiled workload.

    ``alloc_mes``/``alloc_ves`` is the vNPU's engine allocation (its
    *home* capacity under spatial mapping, or its fair share under
    temporal mapping).  Requests are closed-loop by default: the next
    request is issued as soon as the previous one finishes, mirroring the
    paper's steady-state methodology; open-loop arrival times can be
    supplied instead.  Open-loop tenants may pass
    ``target_requests=None`` ("drain" mode): the tenant finishes when
    every supplied arrival has been admitted and served, so queueing
    delay -- not a request count -- bounds the run.
    """

    def __init__(
        self,
        tenant_id: int,
        name: str,
        graph: CompiledGraph,
        alloc_mes: int,
        alloc_ves: int,
        target_requests: Optional[int] = 10,
        priority: float = 1.0,
        arrivals: Optional[Sequence[float]] = None,
    ) -> None:
        if alloc_mes < 0 or alloc_ves < 0:
            raise SimulationError("allocations cannot be negative")
        if len(graph) == 0:
            raise SimulationError(f"tenant {name!r} has an empty workload")
        if target_requests is None and arrivals is None:
            raise SimulationError(
                "target_requests=None (drain mode) requires open-loop arrivals"
            )
        self.tenant_id = tenant_id
        self.name = name
        self.graph = graph
        self.alloc_mes = alloc_mes
        self.alloc_ves = alloc_ves
        self.target_requests = target_requests
        self.priority = priority
        self.closed_loop = arrivals is None
        self.pending_arrivals: Deque[float] = deque(arrivals or [])
        self.queued_requests: Deque[Request] = deque()
        # runtime cursors
        self.active_units: List[ExecUnit] = []
        self.current_request: Optional[Request] = None
        self.op_cursor = 0
        self.group_cursor = 0
        self.completed: List[Request] = []
        self.active_service_cycles = 0.0
        self._next_request_id = 0

    # ------------------------------------------------------------------
    # Request lifecycle
    # ------------------------------------------------------------------
    def bootstrap(self, now: float) -> None:
        if self.closed_loop:
            self.queued_requests.append(
                Request(request_id=self._take_id(), issue_cycle=now)
            )
        self.activate_arrivals(now)
        self._maybe_start_request(now)

    def _take_id(self) -> int:
        rid = self._next_request_id
        self._next_request_id += 1
        return rid

    def activate_arrivals(self, now: float) -> None:
        while self.pending_arrivals and self.pending_arrivals[0] <= now + EPS:
            issue = self.pending_arrivals.popleft()
            self.queued_requests.append(
                Request(request_id=self._take_id(), issue_cycle=issue)
            )
        self._maybe_start_request(now)

    def next_arrival(self) -> Optional[float]:
        if self.pending_arrivals:
            return self.pending_arrivals[0]
        return None

    def _maybe_start_request(self, now: float) -> None:
        if self.current_request is not None or not self.queued_requests:
            return
        request = self.queued_requests.popleft()
        request.start_cycle = now
        self.current_request = request
        self.op_cursor = 0
        self.group_cursor = 0

    def start_pending_work(self, now: float, stats: SimStats) -> None:
        """Instantiate units for the current group if none are active."""
        self._maybe_start_request(now)
        if self.current_request is None or self.active_units:
            return
        self._spawn_group_units(now, stats)

    # ------------------------------------------------------------------
    # Unit creation
    # ------------------------------------------------------------------
    def _spawn_group_units(self, now: float, stats: SimStats) -> None:
        assert self.current_request is not None
        op = self.graph.ops[self.op_cursor]
        if self.group_cursor == 0:
            stats.op_started(
                self.tenant_id, op.name, op.op_index,
                self.current_request.request_id, now,
            )
        self.active_units = list(
            _units_for_op(op, self.tenant_id, self.current_request.request_id,
                          self.group_cursor)
        )
        if not self.active_units:
            raise SimulationError(f"operator {op.name!r} produced no units")

    def on_unit_done(self, now: float, stats: SimStats, sim: "Simulator") -> None:
        """Advance cursors when the whole active group completed."""
        if any(u.state is not UnitState.DONE for u in self.active_units):
            return
        assert self.current_request is not None
        op = self.graph.ops[self.op_cursor]
        num_groups = _num_groups(op)
        self.group_cursor += 1
        self.active_units = []
        if self.group_cursor < num_groups:
            self._spawn_group_units(now, stats)
            return
        stats.op_finished(
            self.tenant_id, op.op_index, self.current_request.request_id, now
        )
        self.group_cursor = 0
        self.op_cursor += 1
        if self.op_cursor < len(self.graph.ops):
            self._spawn_group_units(now, stats)
            return
        # Request complete.
        request = self.current_request
        request.finish_cycle = now
        self.completed.append(request)
        self.current_request = None
        self.op_cursor = 0
        if self.closed_loop:
            self.queued_requests.append(
                Request(request_id=self._take_id(), issue_cycle=now)
            )
        self.start_pending_work(now, stats)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def reached_target(self) -> bool:
        if self.target_requests is None:
            # Drain mode: done once the whole arrival stream is served.
            return (
                not self.pending_arrivals
                and not self.queued_requests
                and self.current_request is None
            )
        return len(self.completed) >= self.target_requests

    def issued_requests(self) -> int:
        """Requests admitted so far (open-loop offered load accounting)."""
        return self._next_request_id

    def me_engines_wanted(self) -> int:
        return sum(
            u.me_engines_needed
            for u in self.active_units
            if u.is_me_unit and not u.done
        )

    def latencies(self) -> List[float]:
        return [r.latency for r in self.completed]

    def queueing_delays(self) -> List[float]:
        return [r.queueing_delay for r in self.completed]


def _num_groups(op: CompiledOp) -> int:
    if op.isa == "neuisa":
        return len(op.groups)
    return 1


def _units_for_op(
    op: CompiledOp, tenant_id: int, request_id: int, group_cursor: int
) -> List[ExecUnit]:
    if op.isa == "neuisa":
        return _units_for_neuisa_group(op, tenant_id, request_id, group_cursor)
    return _units_for_vliw_op(op, tenant_id, request_id)


def _units_for_neuisa_group(
    op: CompiledOp, tenant_id: int, request_id: int, group_cursor: int
) -> List[ExecUnit]:
    group = op.groups[group_cursor]
    units: List[ExecUnit] = []
    for utop in group.utops:
        cost = utop.cost
        if utop.kind is UTopKind.ME:
            me_cycles = max(cost.me_cycles, 1.0)
            units.append(
                ExecUnit(
                    kind=UnitKind.ME_UTOP,
                    owner=tenant_id,
                    op_index=op.op_index,
                    op_name=op.name,
                    request_id=request_id,
                    me_engines_needed=1,
                    remaining_me=me_cycles,
                    remaining_ve=cost.ve_cycles,
                    ve_rate=cost.ve_cycles / me_cycles,
                    hbm_rate=cost.hbm_bytes / me_cycles,
                )
            )
        else:
            ve_cycles = max(cost.ve_cycles, 1.0)
            units.append(
                ExecUnit(
                    kind=UnitKind.VE_UTOP,
                    owner=tenant_id,
                    op_index=op.op_index,
                    op_name=op.name,
                    request_id=request_id,
                    me_engines_needed=0,
                    remaining_me=0.0,
                    remaining_ve=ve_cycles,
                    ve_rate=0.0,
                    hbm_rate=cost.hbm_bytes / ve_cycles,
                    parallelism=max(1, cost.parallelism),
                )
            )
    return units


def _units_for_vliw_op(
    op: CompiledOp, tenant_id: int, request_id: int
) -> List[ExecUnit]:
    if op.is_me_op:
        per_engine = max(op.me_cycles_per_engine, 1.0)
        engines = max(1, op.coupled_me_count)
        return [
            ExecUnit(
                kind=UnitKind.VLIW_ME,
                owner=tenant_id,
                op_index=op.op_index,
                op_name=op.name,
                request_id=request_id,
                me_engines_needed=engines,
                remaining_me=per_engine,
                remaining_ve=op.ve_cycles,
                # ve_rate is VE demand *per granted engine* so that
                # `ve_rate * granted_me` is the op's total stream rate.
                ve_rate=op.ve_cycles / per_engine / engines,
                # hbm_rate is likewise per engine; the engine multiplies
                # by the grant when computing bandwidth demand.
                hbm_rate=op.hbm_bytes / per_engine / engines,
            )
        ]
    ve_cycles = max(op.ve_cycles, 1.0)
    return [
        ExecUnit(
            kind=UnitKind.VLIW_VE,
            owner=tenant_id,
            op_index=op.op_index,
            op_name=op.name,
            request_id=request_id,
            me_engines_needed=0,
            remaining_me=0.0,
            remaining_ve=ve_cycles,
            ve_rate=0.0,
            hbm_rate=op.hbm_bytes / ve_cycles,
            parallelism=max(1, op.ve_parallelism),
        )
    ]


@dataclass
class TenantResult:
    """Per-tenant outcome of a run."""

    tenant_id: int
    name: str
    latencies_cycles: List[float]
    throughput_rps: float
    me_utilization: float
    ve_utilization: float
    blocked_fraction: float
    completed_requests: int
    #: Per-completed-request admission wait (all zeros under closed loop).
    queueing_cycles: List[float] = field(default_factory=list)
    #: Requests admitted during the run; under open loop this is the
    #: offered load, so ``completed/offered`` is SLO-style attainment
    #: even when the horizon cuts a queue off mid-flight.
    offered_requests: int = 0

    def latency_percentile(self, pct: float) -> float:
        if not self.latencies_cycles:
            return 0.0
        ordered = sorted(self.latencies_cycles)
        idx = min(len(ordered) - 1, max(0, math.ceil(pct / 100.0 * len(ordered)) - 1))
        return ordered[idx]

    @property
    def p95_latency(self) -> float:
        return self.latency_percentile(95.0)

    @property
    def p99_latency(self) -> float:
        return self.latency_percentile(99.0)

    @property
    def mean_latency(self) -> float:
        if not self.latencies_cycles:
            return 0.0
        return sum(self.latencies_cycles) / len(self.latencies_cycles)

    @property
    def mean_queueing_delay(self) -> float:
        if not self.queueing_cycles:
            return 0.0
        return sum(self.queueing_cycles) / len(self.queueing_cycles)


@dataclass
class SimResult:
    tenants: Dict[int, TenantResult]
    stats: SimStats
    total_cycles: float

    def tenant(self, tenant_id: int) -> TenantResult:
        return self.tenants[tenant_id]


class Simulator:
    """Multi-tenant NPU core simulator."""

    def __init__(
        self,
        core: NpuCoreConfig,
        scheduler: SchedulerBase,
        tenants: Sequence[Tenant],
        horizon_cycles: float = float("inf"),
        record_assignment: bool = False,
        record_ops: bool = True,
        record_bandwidth: bool = False,
        max_epochs: int = 5_000_000,
        hbm_policy: str = "hierarchical",
    ) -> None:
        if not tenants:
            raise SimulationError("simulator needs at least one tenant")
        ids = [t.tenant_id for t in tenants]
        if len(set(ids)) != len(ids):
            raise SimulationError("tenant ids must be unique")
        if hbm_policy not in ("hierarchical", "flat"):
            raise SimulationError(f"unknown HBM policy {hbm_policy!r}")
        self.core = core
        self.scheduler = scheduler
        self.tenants = list(tenants)
        self.horizon = horizon_cycles
        self.max_epochs = max_epochs
        #: "hierarchical" = fair per vNPU then per stream (the paper's
        #: default); "flat" = max-min fair across all streams (ablation).
        self.hbm_policy = hbm_policy
        self.now = 0.0
        self.reclaims: List[ReclaimTimer] = []
        self.stats = SimStats(
            num_mes=core.num_mes,
            num_ves=core.num_ves,
            record_assignment=record_assignment,
            record_ops=record_ops,
            record_bandwidth=record_bandwidth,
        )

    # ------------------------------------------------------------------
    # Capacity helpers used by schedulers
    # ------------------------------------------------------------------
    @property
    def available_mes(self) -> int:
        return self.core.num_mes - len(self.reclaims)

    def reclaiming_for(self, tenant_id: int) -> int:
        return sum(1 for r in self.reclaims if r.owner == tenant_id)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self) -> SimResult:
        for tenant in self.tenants:
            tenant.bootstrap(self.now)
            tenant.start_pending_work(self.now, self.stats)
        epochs = 0
        while not self._finished() and self.now < self.horizon:
            epochs += 1
            if epochs > self.max_epochs:
                raise SimulationError(
                    f"exceeded {self.max_epochs} epochs at cycle {self.now:.0f}; "
                    "likely a scheduling livelock"
                )
            self._step()
        return self._build_result()

    def _finished(self) -> bool:
        return all(t.reached_target for t in self.tenants)

    def _step(self) -> None:
        self._expire_reclaims()
        for tenant in self.tenants:
            tenant.activate_arrivals(self.now)
            tenant.start_pending_work(self.now, self.stats)

        decision = self.scheduler.decide(self)
        prev_running = [
            u
            for t in self.tenants
            for u in t.active_units
            if u.state is UnitState.RUNNING and u.is_me_unit
        ]
        self._apply_preemptions(decision)
        self._apply_grants(decision)
        # Continuity contract: a running ME unit cannot silently lose its
        # engine -- it must either keep running or be preempted (paying
        # the context-switch penalty).
        preempted = set(decision.preempt)
        for unit in prev_running:
            if unit not in decision.running_me and unit not in preempted:
                raise SimulationError(
                    f"scheduler dropped running unit {unit.op_name!r} "
                    "without preempting it"
                )

        delta, rates, ve_exec_rates, hbm_rate = self._epoch_length(decision)
        self._advance(delta, rates, ve_exec_rates, decision, hbm_rate)
        self.now += delta
        self._handle_completions()

    # ------------------------------------------------------------------
    # Decision application
    # ------------------------------------------------------------------
    def _expire_reclaims(self) -> None:
        self.reclaims = [r for r in self.reclaims if r.ready_at > self.now + EPS]

    def _apply_preemptions(self, decision: Decision) -> None:
        for unit in decision.preempt:
            if unit.state is not UnitState.RUNNING:
                continue
            engines = max(1, unit.granted_me)
            ready_at = self.now + self.core.me_preemption_cycles
            # The freed engines belong to whichever tenant the scheduler
            # is reclaiming them for; harvested engines return home.
            owner = decision.reclaim_owners.get(unit, unit.owner)
            for _ in range(engines):
                self.reclaims.append(ReclaimTimer(ready_at=ready_at, owner=owner))
            unit.state = UnitState.READY
            unit.granted_me = 0
            unit.granted_ve = 0.0
            unit.harvesting = False
            self.stats.preemption_count += 1
            self.stats.reclaim_penalty_cycles += (
                engines * self.core.me_preemption_cycles
            )
            if unit in decision.running_me:
                raise SimulationError("scheduler both preempted and ran a unit")

    def _apply_grants(self, decision: Decision) -> None:
        # Clear previous grants on every live unit.
        for tenant in self.tenants:
            for unit in tenant.active_units:
                if unit.state is UnitState.RUNNING:
                    unit.state = UnitState.READY
                unit.granted_me = 0
                unit.granted_ve = 0.0
                unit.harvesting = False

        total_me = 0
        for unit, engines in decision.running_me.items():
            if unit.done:
                raise SimulationError("scheduler ran a finished unit")
            if not unit.is_me_unit:
                raise SimulationError("ME grant to a VE unit")
            needed = unit.me_engines_needed
            if engines != needed:
                raise SimulationError(
                    f"unit {unit.op_name!r} needs {needed} MEs, granted {engines}"
                )
            unit.granted_me = engines
            unit.state = UnitState.RUNNING
            total_me += engines
        if total_me > self.available_mes + EPS:
            raise SimulationError(
                f"scheduler over-committed MEs: {total_me} > {self.available_mes}"
            )

        for unit, engines in decision.harvested_me.items():
            if engines > unit.granted_me:
                raise SimulationError("harvested count exceeds grant")
            unit.harvesting = engines > 0

        total_ve = 0.0
        for unit, alloc in decision.ve_alloc.items():
            if alloc < -EPS:
                raise SimulationError("negative VE allocation")
            if unit.done:
                continue
            unit.granted_ve = max(0.0, alloc)
            if not unit.is_me_unit and unit.granted_ve > 0:
                unit.state = UnitState.RUNNING
            total_ve += unit.granted_ve
        if total_ve > self.core.num_ves + 1e-3:
            raise SimulationError(
                f"scheduler over-committed VEs: {total_ve} > {self.core.num_ves}"
            )

    # ------------------------------------------------------------------
    # Rate computation and epoch selection
    # ------------------------------------------------------------------
    def _running_units(self) -> List[ExecUnit]:
        out: List[ExecUnit] = []
        for tenant in self.tenants:
            for unit in tenant.active_units:
                if unit.state is UnitState.RUNNING:
                    out.append(unit)
        return out

    def _epoch_length(self, decision: Decision):
        running = self._running_units()
        demands: Dict[ExecUnit, float] = {}
        for unit in running:
            if unit.is_me_unit:
                demands[unit] = unit.hbm_rate * unit.granted_me
            else:
                demands[unit] = unit.hbm_rate * unit.granted_ve
        if self.hbm_policy == "hierarchical":
            owners = {unit: unit.owner for unit in running}
            factors = hierarchical_fair_factors(
                demands, owners, self.core.hbm_bytes_per_cycle
            )
        else:
            factors = slowdown_factors(demands, self.core.hbm_bytes_per_cycle)
        hbm_rate = min(
            self.core.hbm_bytes_per_cycle,
            sum(d for d in demands.values()),
        )

        rates: Dict[ExecUnit, float] = {}
        ve_exec: Dict[ExecUnit, float] = {}
        for unit in running:
            f = factors[unit]
            if unit.is_me_unit:
                if unit.ve_rate > EPS:
                    needed = unit.ve_rate * unit.granted_me
                    g = min(1.0, unit.granted_ve / needed) if needed > 0 else 1.0
                else:
                    g = 1.0
                rates[unit] = min(f, g)
            else:
                ve_exec[unit] = unit.granted_ve * f

        candidates: List[float] = []
        for unit in running:
            if unit.is_me_unit:
                rate = rates[unit]
                if rate > EPS:
                    candidates.append(unit.remaining_me / rate)
            else:
                rate = ve_exec.get(unit, 0.0)
                if rate > EPS:
                    candidates.append(unit.remaining_ve / rate)
        for timer in self.reclaims:
            candidates.append(timer.ready_at - self.now)
        if decision.next_decision_at is not None:
            gap = decision.next_decision_at - self.now
            if gap <= EPS:
                raise SimulationError("scheduler quantum did not advance time")
            candidates.append(gap)
        for tenant in self.tenants:
            arrival = tenant.next_arrival()
            if arrival is not None:
                candidates.append(arrival - self.now)
        if self.horizon != float("inf"):
            candidates.append(self.horizon - self.now)

        candidates = [c for c in candidates if c > EPS]
        if not candidates:
            self._raise_deadlock()
        delta = max(MIN_DELTA, min(candidates))
        return delta, rates, ve_exec, hbm_rate

    def _raise_deadlock(self) -> None:
        detail = []
        for tenant in self.tenants:
            detail.append(
                f"{tenant.name}: units={len(tenant.active_units)} "
                f"completed={len(tenant.completed)}/{tenant.target_requests}"
            )
        raise SimulationError(
            "no runnable work and no future events at cycle "
            f"{self.now:.0f} ({'; '.join(detail)})"
        )

    # ------------------------------------------------------------------
    # Advancing state
    # ------------------------------------------------------------------
    def _advance(
        self,
        delta: float,
        rates: Dict[ExecUnit, float],
        ve_exec: Dict[ExecUnit, float],
        decision: Decision,
        hbm_rate: float,
    ) -> None:
        me_busy: Dict[int, float] = {}
        ve_busy: Dict[int, float] = {}
        me_assigned: Dict[int, float] = {}
        ve_assigned: Dict[int, float] = {}
        harvested: Dict[int, float] = {}

        for unit, rate in rates.items():
            progress = rate * delta
            unit.remaining_me = max(0.0, unit.remaining_me - progress)
            if unit.ve_rate > 0:
                drained = progress * unit.ve_rate * unit.granted_me
                unit.remaining_ve = max(0.0, unit.remaining_ve - drained)
                ve_busy[unit.owner] = ve_busy.get(unit.owner, 0.0) + (
                    rate * unit.ve_rate * unit.granted_me
                )
                ve_assigned[unit.owner] = (
                    ve_assigned.get(unit.owner, 0.0) + unit.granted_ve
                )
            me_busy[unit.owner] = me_busy.get(unit.owner, 0.0) + rate * unit.granted_me
            me_assigned[unit.owner] = (
                me_assigned.get(unit.owner, 0.0) + unit.granted_me
            )
            if unit.harvesting:
                harvested_engines = decision.harvested_me.get(unit, 0)
                harvested[unit.owner] = (
                    harvested.get(unit.owner, 0.0) + harvested_engines
                )
                self.stats.op_harvest_cycles(
                    unit.owner, unit.op_index, unit.request_id,
                    harvested_engines * rate * delta,
                )

        for unit, rate in ve_exec.items():
            unit.remaining_ve = max(0.0, unit.remaining_ve - rate * delta)
            ve_busy[unit.owner] = ve_busy.get(unit.owner, 0.0) + rate
            ve_assigned[unit.owner] = ve_assigned.get(unit.owner, 0.0) + unit.granted_ve

        self._account_blocked(delta)
        for tenant in self.tenants:
            if tenant.current_request is not None:
                tenant.active_service_cycles += delta

        self.stats.record_epoch(
            self.now,
            delta,
            me_busy,
            ve_busy,
            me_assigned=me_assigned,
            ve_assigned=ve_assigned,
            harvested_mes_per_tenant=harvested,
            hbm_bytes_per_cycle=hbm_rate,
        )

    def _account_blocked(self, delta: float) -> None:
        """Table III metric: a tenant is blocked when it runs fewer home
        engines than it is entitled to (because a harvester still holds
        them or the reclaim penalty is being paid)."""
        for tenant in self.tenants:
            wanted = tenant.me_engines_wanted()
            if wanted == 0:
                continue
            entitled = min(tenant.alloc_mes, wanted)
            running = sum(
                u.granted_me
                for u in tenant.active_units
                if u.state is UnitState.RUNNING and u.is_me_unit and not u.harvesting
            )
            if running + EPS < entitled:
                first = next(
                    (
                        u
                        for u in tenant.active_units
                        if u.is_me_unit and u.state is not UnitState.DONE
                    ),
                    None,
                )
                if first is not None:
                    self.stats.op_blocked(
                        tenant.tenant_id, first.op_index, first.request_id, delta
                    )

    # ------------------------------------------------------------------
    # Completion handling
    # ------------------------------------------------------------------
    def _handle_completions(self) -> None:
        for tenant in self.tenants:
            finished_any = False
            for unit in tenant.active_units:
                if unit.done:
                    continue
                if unit.is_me_unit and unit.remaining_me <= EPS:
                    unit.remaining_me = 0.0
                    unit.remaining_ve = 0.0
                    unit.state = UnitState.DONE
                    unit.granted_me = 0
                    unit.granted_ve = 0.0
                    finished_any = True
                elif not unit.is_me_unit and unit.remaining_ve <= EPS:
                    unit.remaining_ve = 0.0
                    unit.state = UnitState.DONE
                    unit.granted_ve = 0.0
                    finished_any = True
            if finished_any:
                tenant.on_unit_done(self.now, self.stats, self)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def _build_result(self) -> SimResult:
        total = max(self.stats.total_cycles, EPS)
        results: Dict[int, TenantResult] = {}
        seconds = self.core.cycles_to_seconds(total)
        for tenant in self.tenants:
            blocked = self.stats.blocked_cycles_per_tenant.get(tenant.tenant_id, 0.0)
            results[tenant.tenant_id] = TenantResult(
                tenant_id=tenant.tenant_id,
                name=tenant.name,
                latencies_cycles=tenant.latencies(),
                throughput_rps=len(tenant.completed) / seconds if seconds > 0 else 0.0,
                me_utilization=self.stats.tenant_me_utilization(tenant.tenant_id),
                ve_utilization=self.stats.tenant_ve_utilization(tenant.tenant_id),
                blocked_fraction=blocked / total,
                completed_requests=len(tenant.completed),
                queueing_cycles=tenant.queueing_delays(),
                offered_requests=tenant.issued_requests(),
            )
        return SimResult(tenants=results, stats=self.stats, total_cycles=total)
