"""The epoch-driven simulation engine.

See :mod:`repro.sim` for the fluid execution model.  The engine owns:

- tenants (vNPU + compiled workload + request stream),
- the reclaim list (engines paying the ME context-switch penalty after a
  preemption, paper SectionIII-G: 256 cycles for a 128x128 array),
- the main loop: ask the scheduler for a :class:`Decision`, validate it
  against physical capacity, compute progress rates (HBM max-min fair
  sharing + embedded-VE coupling), advance to the next event, handle
  completions and request lifecycle.
"""

from __future__ import annotations

import gc
import math
import os
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.compiler.lowering import CompiledGraph, CompiledOp
from repro.config import NpuCoreConfig
from repro.errors import SimulationError
from repro.isa.utop import UTopKind
from repro.sim.hbm import (
    FairFactorCache,
    hierarchical_fair_factors,
    slowdown_factors,
)
from repro.sim.scheduler_base import Decision, ExecUnit, SchedulerBase, UnitKind, UnitState
from repro.sim.stats import SimStats

#: Numerical tolerance for completion checks and capacity validation.
EPS = 1e-6
#: Lower bound for any epoch to guarantee forward progress.
MIN_DELTA = 1e-9
#: Environment escape hatch: set REPRO_SIM_FAST_PATH=0 to force every
#: simulator onto the unmemoised reference path (used by the
#: differential bit-identity tests).
FAST_PATH_ENV = "REPRO_SIM_FAST_PATH"
#: Units returned to a tenant's free-list, awaiting reuse.
_POOL_LIMIT = 64
#: Decision-memo safety valve; real runs stay far below this.
_MEMO_LIMIT = 65536


def _fast_path_default() -> bool:
    return os.environ.get(FAST_PATH_ENV, "1").lower() not in ("0", "false", "off")


#: Process-wide plan memos, keyed by (scheduler memo_context, core,
#: hbm policy, record_assignment, tenant allocation layout).
_PLAN_MEMOS: Dict[Tuple, Dict] = {}


@dataclass
class Request:
    request_id: int
    issue_cycle: float
    start_cycle: float = 0.0
    finish_cycle: float = 0.0

    @property
    def latency(self) -> float:
        return self.finish_cycle - self.issue_cycle

    @property
    def service_time(self) -> float:
        return self.finish_cycle - self.start_cycle

    @property
    def queueing_delay(self) -> float:
        """Time spent waiting for admission (zero under closed loop)."""
        return self.start_cycle - self.issue_cycle


@dataclass
class ReclaimTimer:
    """One engine paying the preemption penalty until ``ready_at``."""

    ready_at: float
    owner: int


class Tenant:
    """One vNPU instance executing a compiled workload.

    ``alloc_mes``/``alloc_ves`` is the vNPU's engine allocation (its
    *home* capacity under spatial mapping, or its fair share under
    temporal mapping).  Requests are closed-loop by default: the next
    request is issued as soon as the previous one finishes, mirroring the
    paper's steady-state methodology; open-loop arrival times can be
    supplied instead.  Open-loop tenants may pass
    ``target_requests=None`` ("drain" mode): the tenant finishes when
    every supplied arrival has been admitted and served, so queueing
    delay -- not a request count -- bounds the run.
    """

    def __init__(
        self,
        tenant_id: int,
        name: str,
        graph: CompiledGraph,
        alloc_mes: int,
        alloc_ves: int,
        target_requests: Optional[int] = 10,
        priority: float = 1.0,
        arrivals: Optional[Sequence[float]] = None,
    ) -> None:
        if alloc_mes < 0 or alloc_ves < 0:
            raise SimulationError("allocations cannot be negative")
        if len(graph) == 0:
            raise SimulationError(f"tenant {name!r} has an empty workload")
        if target_requests is None and arrivals is None:
            raise SimulationError(
                "target_requests=None (drain mode) requires open-loop arrivals"
            )
        self.tenant_id = tenant_id
        self.name = name
        self.graph = graph
        self.alloc_mes = alloc_mes
        self.alloc_ves = alloc_ves
        self.target_requests = target_requests
        self.priority = priority
        self.closed_loop = arrivals is None
        self.pending_arrivals: Deque[float] = deque(arrivals or [])
        self.queued_requests: Deque[Request] = deque()
        # runtime cursors
        self.active_units: List[ExecUnit] = []
        self.current_request: Optional[Request] = None
        self.op_cursor = 0
        self.group_cursor = 0
        self.completed: List[Request] = []
        self.active_service_cycles = 0.0
        self._next_request_id = 0
        # Per-(op, group) unit templates: every request replays the same
        # compiled graph, so the unit specs are derived once (and shared
        # across tenants running the same graph object) instead of being
        # recomputed per request.
        self._templates = _graph_unit_templates(graph)
        #: Free-list of retired ExecUnit shells for the hot spawn path.
        self._pool: List[ExecUnit] = []
        #: Set when the active unit set changed (spawn/retire); the
        #: engine's fast path uses it to detect steady-state epochs.
        self._units_mutated = False

    # ------------------------------------------------------------------
    # Request lifecycle
    # ------------------------------------------------------------------
    def bootstrap(self, now: float) -> None:
        if self.closed_loop:
            self.queued_requests.append(
                Request(request_id=self._take_id(), issue_cycle=now)
            )
        self.activate_arrivals(now)
        self._maybe_start_request(now)

    def _take_id(self) -> int:
        rid = self._next_request_id
        self._next_request_id += 1
        return rid

    def activate_arrivals(self, now: float) -> None:
        pending = self.pending_arrivals
        threshold = now + EPS
        while pending and pending[0] <= threshold:
            issue = pending.popleft()
            self.queued_requests.append(
                Request(request_id=self._take_id(), issue_cycle=issue)
            )
        if self.current_request is None and self.queued_requests:
            self._maybe_start_request(now)

    def next_arrival(self) -> Optional[float]:
        if self.pending_arrivals:
            return self.pending_arrivals[0]
        return None

    def _maybe_start_request(self, now: float) -> None:
        if self.current_request is not None or not self.queued_requests:
            return
        request = self.queued_requests.popleft()
        request.start_cycle = now
        self.current_request = request
        self.op_cursor = 0
        self.group_cursor = 0

    def start_pending_work(self, now: float, stats: SimStats) -> None:
        """Instantiate units for the current group if none are active."""
        self._maybe_start_request(now)
        if self.current_request is None or self.active_units:
            return
        self._spawn_group_units(now, stats)

    # ------------------------------------------------------------------
    # Unit creation
    # ------------------------------------------------------------------
    def _spawn_group_units(self, now: float, stats: SimStats) -> None:
        request = self.current_request
        assert request is not None
        templates = self._templates[self.op_cursor][self.group_cursor]
        if self.group_cursor == 0 and stats.record_ops:
            op = self.graph.ops[self.op_cursor]
            stats.op_started(
                self.tenant_id, op.name, op.op_index, request.request_id, now,
            )
        if not templates:
            op = self.graph.ops[self.op_cursor]
            raise SimulationError(f"operator {op.name!r} produced no units")
        pool = self._pool
        tid = self.tenant_id
        rid = request.request_id
        from_template = ExecUnit.from_template
        self.active_units = [
            from_template(tpl, tid, rid, pool) for tpl in templates
        ]
        self._units_mutated = True

    def on_unit_done(self, now: float, stats: SimStats, sim: "Simulator") -> None:
        """Advance cursors when the whole active group completed."""
        done = UnitState.DONE
        for u in self.active_units:
            if u.state is not done:
                return
        assert self.current_request is not None
        op_cursor = self.op_cursor
        self.group_cursor += 1
        retired = self.active_units
        if len(self._pool) < _POOL_LIMIT:
            self._pool.extend(retired)
        self.active_units = []
        self._units_mutated = True
        if self.group_cursor < len(self._templates[op_cursor]):
            self._spawn_group_units(now, stats)
            return
        if stats.record_ops:
            op = self.graph.ops[op_cursor]
            stats.op_finished(
                self.tenant_id, op.op_index, self.current_request.request_id,
                now,
            )
        self.group_cursor = 0
        self.op_cursor = op_cursor + 1
        if self.op_cursor < len(self._templates):
            self._spawn_group_units(now, stats)
            return
        # Request complete.
        request = self.current_request
        request.finish_cycle = now
        self.completed.append(request)
        self.current_request = None
        self.op_cursor = 0
        if self.closed_loop:
            self.queued_requests.append(
                Request(request_id=self._take_id(), issue_cycle=now)
            )
        self.start_pending_work(now, stats)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def reached_target(self) -> bool:
        if self.target_requests is None:
            # Drain mode: done once the whole arrival stream is served.
            return (
                not self.pending_arrivals
                and not self.queued_requests
                and self.current_request is None
            )
        return len(self.completed) >= self.target_requests

    def issued_requests(self) -> int:
        """Requests admitted so far (open-loop offered load accounting)."""
        return self._next_request_id

    def me_engines_wanted(self) -> int:
        done = UnitState.DONE
        total = 0
        for u in self.active_units:
            if u.is_me_unit and u.state is not done:
                total += u.me_engines_needed
        return total

    def latencies(self) -> List[float]:
        return [r.latency for r in self.completed]

    def queueing_delays(self) -> List[float]:
        return [r.queueing_delay for r in self.completed]


#: A unit template mirrors ExecUnit.from_template's field order:
#: (kind, is_me_unit, me_engines_needed, remaining_me, remaining_ve,
#:  ve_rate, hbm_rate, parallelism, op_index, op_name, tpl_id).
UnitTemplate = Tuple[
    UnitKind, bool, int, float, float, float, float, int, int, str, int
]

#: Interned decision-relevant template signatures -> small ids.  Two
#: units whose (kind, engine requirement, VE rate, HBM rate,
#: parallelism) coincide are interchangeable for scheduling decisions
#: and progress rates (remaining work and op identity do not enter
#: either), so they deliberately share a ``tpl_id`` -- the aliasing
#: multiplies decision-memo hits across operators and models.
_template_signatures: Dict[Tuple, int] = {}


def _intern_signature(
    kind: UnitKind, needs: int, ve_rate: float, hbm_rate: float, par: int
) -> int:
    sig = (kind, needs, ve_rate, hbm_rate, par)
    tpl_id = _template_signatures.get(sig)
    if tpl_id is None:
        tpl_id = len(_template_signatures)
        _template_signatures[sig] = tpl_id
    return tpl_id


def _neuisa_group_templates(op: CompiledOp, group_cursor: int) -> Tuple[UnitTemplate, ...]:
    group = op.groups[group_cursor]
    templates: List[UnitTemplate] = []
    for utop in group.utops:
        cost = utop.cost
        if utop.kind is UTopKind.ME:
            me_cycles = max(cost.me_cycles, 1.0)
            ve_rate = cost.ve_cycles / me_cycles
            hbm_rate = cost.hbm_bytes / me_cycles
            templates.append((
                UnitKind.ME_UTOP, True, 1,
                me_cycles, cost.ve_cycles,
                ve_rate, hbm_rate,
                1, op.op_index, op.name,
                _intern_signature(UnitKind.ME_UTOP, 1, ve_rate, hbm_rate, 1),
            ))
        else:
            ve_cycles = max(cost.ve_cycles, 1.0)
            hbm_rate = cost.hbm_bytes / ve_cycles
            par = max(1, cost.parallelism)
            templates.append((
                UnitKind.VE_UTOP, False, 0,
                0.0, ve_cycles,
                0.0, hbm_rate,
                par, op.op_index, op.name,
                _intern_signature(UnitKind.VE_UTOP, 0, 0.0, hbm_rate, par),
            ))
    return tuple(templates)


def _vliw_op_templates(op: CompiledOp) -> Tuple[UnitTemplate, ...]:
    if op.is_me_op:
        per_engine = max(op.me_cycles_per_engine, 1.0)
        engines = max(1, op.coupled_me_count)
        # ve_rate is VE demand *per granted engine* so that
        # `ve_rate * granted_me` is the op's total stream rate; hbm_rate
        # is likewise per engine.
        ve_rate = op.ve_cycles / per_engine / engines
        hbm_rate = op.hbm_bytes / per_engine / engines
        return ((
            UnitKind.VLIW_ME, True, engines,
            per_engine, op.ve_cycles,
            ve_rate, hbm_rate,
            1, op.op_index, op.name,
            _intern_signature(UnitKind.VLIW_ME, engines, ve_rate, hbm_rate, 1),
        ),)
    ve_cycles = max(op.ve_cycles, 1.0)
    hbm_rate = op.hbm_bytes / ve_cycles
    par = max(1, op.ve_parallelism)
    return ((
        UnitKind.VLIW_VE, False, 0,
        0.0, ve_cycles,
        0.0, hbm_rate,
        par, op.op_index, op.name,
        _intern_signature(UnitKind.VLIW_VE, 0, 0.0, hbm_rate, par),
    ),)


def _op_templates(op: CompiledOp) -> Tuple[Tuple[UnitTemplate, ...], ...]:
    if op.isa == "neuisa":
        groups = tuple(
            _neuisa_group_templates(op, g) for g in range(len(op.groups))
        )
    else:
        groups = (_vliw_op_templates(op),)
    # Validate once here (templates bypass ExecUnit.__init__ checks).
    for group in groups:
        for tpl in group:
            if tpl[2] < 0:
                raise SimulationError(
                    f"operator {op.name!r}: negative engine requirement"
                )
            if tpl[3] < 0 or tpl[4] < 0:
                raise SimulationError(
                    f"operator {op.name!r}: negative remaining work"
                )
    return groups


def _graph_unit_templates(
    graph: CompiledGraph,
) -> List[Tuple[Tuple[UnitTemplate, ...], ...]]:
    """Per-(op, group) unit specs, cached on the graph object so tenants
    replaying the same compiled graph (and every request within a
    tenant) share one validated template set."""
    cached = getattr(graph, "_unit_template_cache", None)
    if cached is None:
        cached = [_op_templates(op) for op in graph.ops]
        try:
            graph._unit_template_cache = cached
        except AttributeError:  # pragma: no cover - frozen graph stand-ins
            pass
    return cached


class _EpochPlan:
    """One epoch's fully derived execution plan.

    Everything here is a pure function of the scheduler state
    fingerprint: the per-unit progress rates, the aggregated per-tenant
    busy/harvest/assignment rate dicts (delta-independent, so they are
    computed once per plan -- and shared by every replay of a memoised
    plan -- instead of once per epoch), the blocked and serving
    accounting sets, and the scheduler's forced re-decision time.
    """

    __slots__ = (
        "rates", "ve_exec", "hbm_rate", "next_at", "blocked", "serving",
        "me_busy", "ve_busy", "harvested", "me_assigned", "ve_assigned",
    )

    def __init__(
        self,
        rates: List[Tuple[ExecUnit, float, int]],
        ve_exec: List[Tuple[ExecUnit, float]],
        hbm_rate: float,
        next_at: Optional[float],
        blocked: List[Tuple[int, ExecUnit]],
        serving: List["Tenant"],
        me_busy: Dict[int, float],
        ve_busy: Dict[int, float],
        harvested: Dict[int, float],
        me_assigned: Optional[Dict[int, float]],
        ve_assigned: Optional[Dict[int, float]],
    ) -> None:
        self.rates = rates
        self.ve_exec = ve_exec
        self.hbm_rate = hbm_rate
        self.next_at = next_at
        self.blocked = blocked
        self.serving = serving
        self.me_busy = me_busy
        self.ve_busy = ve_busy
        self.harvested = harvested
        self.me_assigned = me_assigned
        self.ve_assigned = ve_assigned


def _aggregate_rate_dicts(
    rates: List[Tuple[ExecUnit, float, int]],
    ve_exec: List[Tuple[ExecUnit, float]],
    record_assignment: bool,
):
    """Per-tenant busy/harvest/assignment rate dicts for one plan.

    Keyed by owner id (stable for the lifetime of a Simulator), so the
    dicts can live inside a memo entry and be shared across replays."""
    me_busy: Dict[int, float] = {}
    ve_busy: Dict[int, float] = {}
    harvested: Dict[int, float] = {}
    me_assigned: Optional[Dict[int, float]] = None
    ve_assigned: Optional[Dict[int, float]] = None
    if record_assignment:
        me_assigned = {}
        ve_assigned = {}
    for unit, rate, harv in rates:
        owner = unit.owner
        granted_me = unit.granted_me
        ve_rate = unit.ve_rate
        if ve_rate > 0:
            ve_busy[owner] = ve_busy.get(owner, 0.0) + (
                rate * ve_rate * granted_me
            )
            if record_assignment:
                ve_assigned[owner] = (
                    ve_assigned.get(owner, 0.0) + unit.granted_ve
                )
        me_busy[owner] = me_busy.get(owner, 0.0) + rate * granted_me
        if record_assignment:
            me_assigned[owner] = me_assigned.get(owner, 0.0) + granted_me
        if harv:
            harvested[owner] = harvested.get(owner, 0.0) + harv
    for unit, rate in ve_exec:
        owner = unit.owner
        ve_busy[owner] = ve_busy.get(owner, 0.0) + rate
        if record_assignment:
            ve_assigned[owner] = (
                ve_assigned.get(owner, 0.0) + unit.granted_ve
            )
    return me_busy, ve_busy, harvested, me_assigned, ve_assigned


def _encode_plan(
    units: List[ExecUnit],
    preempt_effects: List[Tuple[ExecUnit, int]],
    plan: _EpochPlan,
    tenants: List["Tenant"],
) -> Tuple:
    """Encode an epoch plan for replay onto future unit objects.

    Unit-dependent pieces are stored positionally against the
    fingerprint-ordered ``units`` list; the post-decision unit state
    (grant, VE share, harvesting flag, state) is snapshot densely so a
    replay applies it in one fused pass.  The serving set is stored as
    tenant positions and the rate dicts are keyed by tenant id, so an
    entry holds no per-simulation object references and memos can be
    shared across simulators.
    """
    index = {u: i for i, u in enumerate(units)}
    tenant_index = {t.tenant_id: j for j, t in enumerate(tenants)}
    return (
        tuple((index[u], owner) for u, owner in preempt_effects),
        tuple(
            (u.granted_me, u.granted_ve, u.harvesting, u.state)
            for u in units
        ),
        tuple((index[u], r, h) for u, r, h in plan.rates),
        tuple((index[u], r) for u, r in plan.ve_exec),
        plan.hbm_rate,
        tuple((tid, index[u]) for tid, u in plan.blocked),
        tuple(tenant_index[t.tenant_id] for t in plan.serving),
        plan.me_busy,
        plan.ve_busy,
        plan.harvested,
        plan.me_assigned,
        plan.ve_assigned,
    )


@dataclass
class TenantResult:
    """Per-tenant outcome of a run."""

    tenant_id: int
    name: str
    latencies_cycles: List[float]
    throughput_rps: float
    me_utilization: float
    ve_utilization: float
    blocked_fraction: float
    completed_requests: int
    #: Per-completed-request admission wait (all zeros under closed loop).
    queueing_cycles: List[float] = field(default_factory=list)
    #: Requests admitted during the run; under open loop this is the
    #: offered load, so ``completed/offered`` is SLO-style attainment
    #: even when the horizon cuts a queue off mid-flight.
    offered_requests: int = 0

    def latency_percentile(self, pct: float) -> float:
        if not self.latencies_cycles:
            return 0.0
        ordered = sorted(self.latencies_cycles)
        idx = min(len(ordered) - 1, max(0, math.ceil(pct / 100.0 * len(ordered)) - 1))
        return ordered[idx]

    @property
    def p95_latency(self) -> float:
        return self.latency_percentile(95.0)

    @property
    def p99_latency(self) -> float:
        return self.latency_percentile(99.0)

    @property
    def mean_latency(self) -> float:
        if not self.latencies_cycles:
            return 0.0
        return sum(self.latencies_cycles) / len(self.latencies_cycles)

    @property
    def mean_queueing_delay(self) -> float:
        if not self.queueing_cycles:
            return 0.0
        return sum(self.queueing_cycles) / len(self.queueing_cycles)


@dataclass
class SimResult:
    tenants: Dict[int, TenantResult]
    stats: SimStats
    total_cycles: float

    def tenant(self, tenant_id: int) -> TenantResult:
        return self.tenants[tenant_id]


class Simulator:
    """Multi-tenant NPU core simulator."""

    def __init__(
        self,
        core: NpuCoreConfig,
        scheduler: SchedulerBase,
        tenants: Sequence[Tenant],
        horizon_cycles: float = float("inf"),
        record_assignment: bool = False,
        record_ops: bool = True,
        record_bandwidth: bool = False,
        max_epochs: int = 5_000_000,
        hbm_policy: str = "hierarchical",
        fast_path: Optional[bool] = None,
    ) -> None:
        if not tenants:
            raise SimulationError("simulator needs at least one tenant")
        ids = [t.tenant_id for t in tenants]
        if len(set(ids)) != len(ids):
            raise SimulationError("tenant ids must be unique")
        if hbm_policy not in ("hierarchical", "flat"):
            raise SimulationError(f"unknown HBM policy {hbm_policy!r}")
        self.core = core
        self.scheduler = scheduler
        self.tenants = list(tenants)
        self.horizon = horizon_cycles
        self.max_epochs = max_epochs
        #: "hierarchical" = fair per vNPU then per stream (the paper's
        #: default); "flat" = max-min fair across all streams (ablation).
        self.hbm_policy = hbm_policy
        self.now = 0.0
        self.reclaims: List[ReclaimTimer] = []
        self.stats = SimStats(
            num_mes=core.num_mes,
            num_ves=core.num_ves,
            record_assignment=record_assignment,
            record_ops=record_ops,
            record_bandwidth=record_bandwidth,
        )
        #: Fast path (default on): memoise scheduler decisions and HBM
        #: fair factors across structurally identical epochs, and reuse
        #: the whole epoch plan across steady-state intervals.  All
        #: memoisation is exact-key, so results are bit-identical to the
        #: reference path; ``fast_path=False`` (or REPRO_SIM_FAST_PATH=0)
        #: is the escape hatch that forces the reference path.
        self.fast_path = _fast_path_default() if fast_path is None else bool(fast_path)
        self._factor_cache = FairFactorCache(
            core.hbm_bytes_per_cycle, policy=hbm_policy
        )
        # (key -> encoded epoch plan); see _encode_plan/_replay_plan.
        # Shared process-wide between structurally identical simulations
        # (same policy knobs, core, tenant layout) so repeated windows,
        # sweep points, and cluster segments start with a warm memo;
        # entries are positional and hold no per-simulation references.
        memo_ctx = self.scheduler.memo_context() if self.fast_path else None
        if memo_ctx is not None:
            # The concrete class is part of the key: a subclass that
            # overrides decide() but inherits memo_context() must not
            # replay the base class's plans.
            ctx = (
                type(self.scheduler),
                memo_ctx,
                core,
                hbm_policy,
                record_assignment,
                tuple(
                    (t.tenant_id, t.alloc_mes, t.alloc_ves)
                    for t in self.tenants
                ),
            )
            if ctx not in _PLAN_MEMOS and len(_PLAN_MEMOS) >= 256:
                _PLAN_MEMOS.clear()  # safety valve for sweep marathons
            self._decision_memo = _PLAN_MEMOS.setdefault(ctx, {})
        else:
            self._decision_memo = {}
        self._memo_ctx = ctx if memo_ctx is not None else None
        self._dirty = True
        self._reusable = False
        self._fp_capable = False
        #: Memo key of the current plan when it was replayed from (or
        #: stored into) the decision memo, else None.  Consumed by the
        #: mega-batch engine to bind a lane to a shared chain node.
        self._plan_key = None
        #: Fingerprint-ordered unit list matching ``_plan_key``.
        self._fp_units: Optional[List[ExecUnit]] = None
        self._finished_units: List[ExecUnit] = []
        self._prev_rates: List[Tuple[ExecUnit, float, int]] = []
        self._prev_ve_exec: List[Tuple[ExecUnit, float]] = []
        self._prev_hbm_rate = 0.0

    # ------------------------------------------------------------------
    # Capacity helpers used by schedulers
    # ------------------------------------------------------------------
    @property
    def available_mes(self) -> int:
        return self.core.num_mes - len(self.reclaims)

    def reclaiming_for(self, tenant_id: int) -> int:
        if not self.reclaims:
            return 0
        return sum(1 for r in self.reclaims if r.owner == tenant_id)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Bootstrap every tenant's request stream (idempotent prefix of
        :meth:`run`; the mega-batch engine calls it separately so it can
        own the epoch loop)."""
        for tenant in self.tenants:
            tenant.bootstrap(self.now)
            tenant.start_pending_work(self.now, self.stats)

    def run(self) -> SimResult:
        self.start()
        epochs = 0
        max_epochs = self.max_epochs
        # The epoch loop allocates heavily but acyclically (tuples,
        # pair lists, pooled units); pausing the cycle collector keeps
        # its periodic scans out of the hot loop.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            while not self._finished() and self.now < self.horizon:
                epochs += 1
                if epochs > max_epochs:
                    raise SimulationError(
                        f"exceeded {max_epochs} epochs at cycle "
                        f"{self.now:.0f}; likely a scheduling livelock"
                    )
                self._step()
        finally:
            if gc_was_enabled:
                gc.enable()
        return self._build_result()

    def _finished(self) -> bool:
        for t in self.tenants:
            target = t.target_requests
            if target is None:
                # Drain mode: done once the whole arrival stream is served.
                if (
                    t.pending_arrivals
                    or t.queued_requests
                    or t.current_request is not None
                ):
                    return False
            elif len(t.completed) < target:
                return False
        return True

    def _step(self) -> None:
        plan, had_preempt = self._next_plan()
        self._finish_step(plan, had_preempt)

    def _next_plan(self):
        """First half of an epoch: expire reclaims, admit arrivals and
        pending work, then select this epoch's plan (fused reuse, memo
        replay, or a fresh decision)."""
        before = len(self.reclaims)
        self._expire_reclaims()
        dirty = self._dirty or len(self.reclaims) != before
        now = self.now
        stats = self.stats
        for tenant in self.tenants:
            if tenant.pending_arrivals:
                tenant.activate_arrivals(now)
            if not tenant.active_units:
                tenant.start_pending_work(now, stats)
            if tenant._units_mutated:
                tenant._units_mutated = False
                dirty = True

        if not dirty and self._reusable:
            # Steady-state epoch fusion: no discrete event happened since
            # the previous epoch and the scheduler is state-free, so the
            # previous decision, grants, progress rates, and accounting
            # sets hold verbatim -- fast-forward straight to the next
            # event.
            return self._prev_plan, False
        return self._plan_epoch()

    def _finish_step(self, plan: "_EpochPlan", had_preempt: bool) -> None:
        """Second half of an epoch: advance to the next event and retire
        completed units."""
        next_at = plan.next_at
        delta = self._pick_delta(next_at, plan.rates, plan.ve_exec)
        self._advance(delta, plan)
        self.now += delta
        finished = self._handle_completions()
        # A preemption epoch leaves fresh reclaim timers behind: the next
        # decision must see them, so it can never be fused or reused.
        self._dirty = finished or had_preempt
        self._reusable = (
            self.fast_path and self._fp_capable and next_at is None
        )
        self._prev_plan = plan

    def _plan_epoch(self):
        """Produce this epoch's plan and whether anything was preempted.

        A plan is ``(rates, ve_exec, hbm_rate, next_decision_at,
        blocked, serving)``: progress-rate triples ``(unit, rate,
        harvested_engines)`` for ME units, ``(unit, rate)`` pairs for VE
        units, the consumed HBM rate, the scheduler's forced re-decision
        time, the blocked-tenant accounting set, and the tenants whose
        requests accrue service time.  Everything in a plan is a pure
        function of the scheduler state fingerprint, which is what makes
        it replayable.

        Three tiers: (1) memo hit -- a structurally identical state was
        seen before, replay the stored plan without re-running the
        scheduler or the HBM waterfill; (2) full plan -- run the
        scheduler, validate, compute rates, and memoise when the
        scheduler is state-free; (3) reference path (fast_path off) --
        identical to (2) minus every cache.
        """
        fp = self.scheduler.state_fingerprint(self) if self.fast_path else None
        self._fp_capable = fp is not None
        self._plan_key = None
        self._fp_units = None
        if fp is not None:
            entry = self._decision_memo.get(fp[0])
            if entry is not None:
                self._plan_key = fp[0]
                self._fp_units = fp[1]
                return self._replay_plan(entry, fp[1])

        decision = self.scheduler.decide(self)
        # Capture preempt effects before they are applied (state changes
        # under _apply_preemptions); the memo replays effects, not the
        # scheduler's Decision object.
        preempt_effects = [
            (u, decision.reclaim_owners.get(u, u.owner))
            for u in decision.preempt
            if u.state is UnitState.RUNNING
        ]
        prev_running = [
            u
            for t in self.tenants
            for u in t.active_units
            if u.state is UnitState.RUNNING and u.is_me_unit
        ]
        self._apply_preemptions(decision)
        self._apply_grants(decision)
        # Continuity contract: a running ME unit cannot silently lose its
        # engine -- it must either keep running or be preempted (paying
        # the context-switch penalty).
        preempted = set(decision.preempt)
        for unit in prev_running:
            if unit not in decision.running_me and unit not in preempted:
                raise SimulationError(
                    f"scheduler dropped running unit {unit.op_name!r} "
                    "without preempting it"
                )

        rates, ve_exec_rates, hbm_rate = self._compute_rates(decision)
        blocked = self._compute_blocked()
        serving = [t for t in self.tenants if t.current_request is not None]
        next_at = decision.next_decision_at
        me_busy, ve_busy, harvested, me_assigned, ve_assigned = (
            _aggregate_rate_dicts(
                rates, ve_exec_rates, self.stats.record_assignment
            )
        )
        plan = _EpochPlan(
            rates, ve_exec_rates, hbm_rate, next_at, blocked, serving,
            me_busy, ve_busy, harvested, me_assigned, ve_assigned,
        )
        if fp is not None and next_at is None:
            if len(self._decision_memo) >= _MEMO_LIMIT:
                self._decision_memo.clear()
            self._decision_memo[fp[0]] = _encode_plan(
                fp[1], preempt_effects, plan, self.tenants
            )
            self._plan_key = fp[0]
            self._fp_units = fp[1]
        return plan, bool(decision.preempt)

    def _replay_plan(self, entry: Tuple, units: List[ExecUnit]):
        """Re-apply a memoised epoch plan onto the current unit objects.

        The plan was validated when first computed and the fingerprint
        guarantees the state is structurally identical, so validation and
        the continuity check are skipped."""
        (enc_pre, dense, enc_rates, enc_ve_exec, hbm_rate,
         enc_blocked, enc_serving, me_busy, ve_busy, harvested,
         me_assigned, ve_assigned) = entry
        if enc_pre:
            stats = self.stats
            penalty = self.core.me_preemption_cycles
            ready_at = self.now + penalty
            reclaims = self.reclaims
            for i, owner in enc_pre:
                unit = units[i]
                # granted_me still holds the pre-decision grant here (the
                # dense snapshot is applied below), matching what the
                # validated plan observed when it preempted.
                engines = unit.granted_me
                if engines < 1:
                    engines = 1
                for _ in range(engines):
                    reclaims.append(
                        ReclaimTimer(ready_at=ready_at, owner=owner)
                    )
                stats.preemption_count += 1
                stats.reclaim_penalty_cycles += engines * penalty
        for unit, d in zip(units, dense):
            unit.granted_me = d[0]
            unit.granted_ve = d[1]
            unit.harvesting = d[2]
            unit.state = d[3]
        rates = [(units[i], r, h) for i, r, h in enc_rates]
        ve_exec_rates = [(units[i], r) for i, r in enc_ve_exec]
        blocked = [(tid, units[i]) for tid, i in enc_blocked]
        tenants = self.tenants
        serving = [tenants[j] for j in enc_serving]
        plan = _EpochPlan(
            rates, ve_exec_rates, hbm_rate, None, blocked, serving,
            me_busy, ve_busy, harvested, me_assigned, ve_assigned,
        )
        return plan, bool(enc_pre)

    # ------------------------------------------------------------------
    # Decision application
    # ------------------------------------------------------------------
    def _expire_reclaims(self) -> None:
        reclaims = self.reclaims
        if not reclaims:
            return
        threshold = self.now + EPS
        self.reclaims = [r for r in reclaims if r.ready_at > threshold]

    def _apply_preemptions(self, decision: Decision) -> None:
        for unit in decision.preempt:
            if unit.state is not UnitState.RUNNING:
                continue
            engines = max(1, unit.granted_me)
            ready_at = self.now + self.core.me_preemption_cycles
            # The freed engines belong to whichever tenant the scheduler
            # is reclaiming them for; harvested engines return home.
            owner = decision.reclaim_owners.get(unit, unit.owner)
            for _ in range(engines):
                self.reclaims.append(ReclaimTimer(ready_at=ready_at, owner=owner))
            unit.state = UnitState.READY
            unit.granted_me = 0
            unit.granted_ve = 0.0
            unit.harvesting = False
            self.stats.preemption_count += 1
            self.stats.reclaim_penalty_cycles += (
                engines * self.core.me_preemption_cycles
            )
            if unit in decision.running_me:
                raise SimulationError("scheduler both preempted and ran a unit")

    def _apply_grants(self, decision: Decision) -> None:
        # Clear previous grants on every live unit.
        running = UnitState.RUNNING
        for tenant in self.tenants:
            for unit in tenant.active_units:
                if unit.state is running:
                    unit.state = UnitState.READY
                unit.granted_me = 0
                unit.granted_ve = 0.0
                unit.harvesting = False

        total_me = 0
        for unit, engines in decision.running_me.items():
            if unit.done:
                raise SimulationError("scheduler ran a finished unit")
            if not unit.is_me_unit:
                raise SimulationError("ME grant to a VE unit")
            needed = unit.me_engines_needed
            if engines != needed:
                raise SimulationError(
                    f"unit {unit.op_name!r} needs {needed} MEs, granted {engines}"
                )
            unit.granted_me = engines
            unit.state = UnitState.RUNNING
            total_me += engines
        if total_me > self.available_mes + EPS:
            raise SimulationError(
                f"scheduler over-committed MEs: {total_me} > {self.available_mes}"
            )

        for unit, engines in decision.harvested_me.items():
            if engines > unit.granted_me:
                raise SimulationError("harvested count exceeds grant")
            unit.harvesting = engines > 0

        total_ve = 0.0
        for unit, alloc in decision.ve_alloc.items():
            if alloc < -EPS:
                raise SimulationError("negative VE allocation")
            if unit.done:
                continue
            unit.granted_ve = max(0.0, alloc)
            if not unit.is_me_unit and unit.granted_ve > 0:
                unit.state = UnitState.RUNNING
            total_ve += unit.granted_ve
        if total_ve > self.core.num_ves + 1e-3:
            raise SimulationError(
                f"scheduler over-committed VEs: {total_ve} > {self.core.num_ves}"
            )

    # ------------------------------------------------------------------
    # Rate computation and epoch selection
    # ------------------------------------------------------------------
    def _running_units(self) -> List[ExecUnit]:
        out: List[ExecUnit] = []
        for tenant in self.tenants:
            for unit in tenant.active_units:
                if unit.state is UnitState.RUNNING:
                    out.append(unit)
        return out

    def _compute_rates(self, decision: Decision):
        """Per-unit progress rates for the currently granted units.

        Returns ``(unit, rate, harvested_engines)`` triples for ME units
        and ``(unit, rate)`` pairs for VE units -- pair lists, not dicts,
        because the hot loops only iterate and pair lists avoid hashing
        ExecUnits every epoch.  The HBM waterfill dominates this path;
        under the fast path its factors come from the exact-key
        :class:`FairFactorCache`, which returns bit-identical values to a
        fresh computation."""
        running = self._running_units()
        demands: List[float] = []
        owners: List[int] = []
        for unit in running:
            if unit.is_me_unit:
                demands.append(unit.hbm_rate * unit.granted_me)
            else:
                demands.append(unit.hbm_rate * unit.granted_ve)
            owners.append(unit.owner)
        if self.fast_path:
            factors = self._factor_cache.factors(owners, demands)
        else:
            keyed = dict(enumerate(demands))
            if self.hbm_policy == "hierarchical":
                by_key = hierarchical_fair_factors(
                    keyed, dict(enumerate(owners)), self.core.hbm_bytes_per_cycle
                )
            else:
                by_key = slowdown_factors(keyed, self.core.hbm_bytes_per_cycle)
            factors = [by_key[i] for i in range(len(demands))]
        hbm_rate = min(self.core.hbm_bytes_per_cycle, sum(demands))

        harvested_me = decision.harvested_me
        rates: List[Tuple[ExecUnit, float, int]] = []
        ve_exec: List[Tuple[ExecUnit, float]] = []
        for i, unit in enumerate(running):
            f = factors[i]
            if unit.is_me_unit:
                ve_rate = unit.ve_rate
                if ve_rate > EPS:
                    needed = ve_rate * unit.granted_me
                    g = min(1.0, unit.granted_ve / needed) if needed > 0 else 1.0
                else:
                    g = 1.0
                harv = harvested_me.get(unit, 0) if unit.harvesting else 0
                rates.append((unit, f if f < g else g, harv))
            else:
                ve_exec.append((unit, unit.granted_ve * f))
        return rates, ve_exec, hbm_rate

    def _pick_delta(
        self,
        next_decision_at: Optional[float],
        rates: List[Tuple[ExecUnit, float, int]],
        ve_exec: List[Tuple[ExecUnit, float]],
    ) -> float:
        """Advance to the next event: a unit completion, reclaim expiry,
        scheduler quantum, request arrival, or the horizon."""
        best = math.inf
        for unit, rate, _harv in rates:
            if rate > EPS:
                c = unit.remaining_me / rate
                if EPS < c < best:
                    best = c
        for unit, rate in ve_exec:
            if rate > EPS:
                c = unit.remaining_ve / rate
                if EPS < c < best:
                    best = c
        now = self.now
        if self.reclaims:
            for timer in self.reclaims:
                c = timer.ready_at - now
                if EPS < c < best:
                    best = c
        if next_decision_at is not None:
            gap = next_decision_at - now
            if gap <= EPS:
                raise SimulationError("scheduler quantum did not advance time")
            if gap < best:
                best = gap
        for tenant in self.tenants:
            pending = tenant.pending_arrivals
            if pending:
                c = pending[0] - now
                if EPS < c < best:
                    best = c
        horizon = self.horizon
        if horizon != math.inf:
            c = horizon - now
            if EPS < c < best:
                best = c
        if best == math.inf:
            self._raise_deadlock()
        return best if best > MIN_DELTA else MIN_DELTA

    def _raise_deadlock(self) -> None:
        detail = []
        for tenant in self.tenants:
            detail.append(
                f"{tenant.name}: units={len(tenant.active_units)} "
                f"completed={len(tenant.completed)}/{tenant.target_requests}"
            )
        raise SimulationError(
            "no runnable work and no future events at cycle "
            f"{self.now:.0f} ({'; '.join(detail)})"
        )

    # ------------------------------------------------------------------
    # Advancing state
    # ------------------------------------------------------------------
    def _advance(self, delta: float, plan: _EpochPlan) -> None:
        stats = self.stats
        record_ops = stats.record_ops

        finished: List[ExecUnit] = self._finished_units
        finished.clear()
        for unit, rate, harv in plan.rates:
            progress = rate * delta
            remaining = unit.remaining_me - progress
            unit.remaining_me = remaining if remaining > 0.0 else 0.0
            if remaining <= EPS:
                finished.append(unit)
            ve_rate = unit.ve_rate
            if ve_rate > 0:
                remaining = unit.remaining_ve - progress * ve_rate * unit.granted_me
                unit.remaining_ve = remaining if remaining > 0.0 else 0.0
            if harv and record_ops:
                stats.op_harvest_cycles(
                    unit.owner, unit.op_index, unit.request_id,
                    harv * rate * delta,
                )

        for unit, rate in plan.ve_exec:
            remaining = unit.remaining_ve - rate * delta
            unit.remaining_ve = remaining if remaining > 0.0 else 0.0
            if remaining <= EPS:
                finished.append(unit)

        # Table III metric: a tenant is blocked when it runs fewer home
        # engines than it is entitled to (because a harvester still holds
        # them or the reclaim penalty is being paid).  The blocked set is
        # part of the plan -- it is a pure function of unit states,
        # grants, and allocations.
        for tid, unit in plan.blocked:
            stats.op_blocked(tid, unit.op_index, unit.request_id, delta)
        for tenant in plan.serving:
            tenant.active_service_cycles += delta

        if stats.record_assignment or stats.record_bandwidth:
            stats.record_epoch(
                self.now,
                delta,
                plan.me_busy,
                plan.ve_busy,
                me_assigned=plan.me_assigned,
                ve_assigned=plan.ve_assigned,
                harvested_mes_per_tenant=plan.harvested,
                hbm_bytes_per_cycle=plan.hbm_rate,
            )
        else:
            # Inline of SimStats.record_epoch for the no-trace case --
            # same accumulation order, minus the call and branch
            # overhead of the general method.
            stats.total_cycles += delta
            integral = stats.me_busy_integral
            per_tenant = stats.me_busy_per_tenant
            for owner, mes in plan.me_busy.items():
                v = mes * delta
                integral += v
                per_tenant[owner] += v
            stats.me_busy_integral = integral
            integral = stats.ve_busy_integral
            per_tenant = stats.ve_busy_per_tenant
            for owner, ves in plan.ve_busy.items():
                v = ves * delta
                integral += v
                per_tenant[owner] += v
            stats.ve_busy_integral = integral
            harvested = plan.harvested
            if harvested:
                per_tenant = stats.harvested_me_integral
                for owner, mes in harvested.items():
                    per_tenant[owner] += mes * delta

    def _compute_blocked(self) -> List[Tuple[int, ExecUnit]]:
        """Blocked-tenant accounting set for the current grant state:
        ``(tenant_id, first pending ME unit)`` per blocked tenant."""
        done = UnitState.DONE
        running_state = UnitState.RUNNING
        out: List[Tuple[int, ExecUnit]] = []
        for tenant in self.tenants:
            wanted = 0
            running = 0
            first = None
            for u in tenant.active_units:
                if not u.is_me_unit:
                    continue
                state = u.state
                if state is not done:
                    wanted += u.me_engines_needed
                    if first is None:
                        first = u
                if state is running_state and not u.harvesting:
                    running += u.granted_me
            if wanted == 0:
                continue
            entitled = tenant.alloc_mes
            if wanted < entitled:
                entitled = wanted
            if running + EPS < entitled and first is not None:
                out.append((tenant.tenant_id, first))
        return out

    # ------------------------------------------------------------------
    # Completion handling
    # ------------------------------------------------------------------
    def _handle_completions(self) -> bool:
        """Retire the units _advance drove to zero remaining work.

        Only units that progressed this epoch can complete (spawns carry
        at least one cycle of work and non-running units make no
        progress), so _advance collects them as it updates remainders
        instead of rescanning every active unit here."""
        finished = self._finished_units
        if not finished:
            return False
        done = UnitState.DONE
        owners = set()
        for unit in finished:
            if unit.is_me_unit:
                unit.remaining_me = 0.0
                unit.remaining_ve = 0.0
            else:
                unit.remaining_ve = 0.0
            unit.state = done
            unit.granted_me = 0
            unit.granted_ve = 0.0
            owners.add(unit.owner)
        finished.clear()
        now = self.now
        stats = self.stats
        for tenant in self.tenants:
            if tenant.tenant_id in owners:
                tenant.on_unit_done(now, stats, self)
        return True

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def _build_result(self) -> SimResult:
        total = max(self.stats.total_cycles, EPS)
        results: Dict[int, TenantResult] = {}
        seconds = self.core.cycles_to_seconds(total)
        for tenant in self.tenants:
            blocked = self.stats.blocked_cycles_per_tenant.get(tenant.tenant_id, 0.0)
            results[tenant.tenant_id] = TenantResult(
                tenant_id=tenant.tenant_id,
                name=tenant.name,
                latencies_cycles=tenant.latencies(),
                throughput_rps=len(tenant.completed) / seconds if seconds > 0 else 0.0,
                me_utilization=self.stats.tenant_me_utilization(tenant.tenant_id),
                ve_utilization=self.stats.tenant_ve_utilization(tenant.tenant_id),
                blocked_fraction=blocked / total,
                completed_requests=len(tenant.completed),
                queueing_cycles=tenant.queueing_delays(),
                offered_requests=tenant.issued_requests(),
            )
        return SimResult(tenants=results, stats=self.stats, total_cycles=total)
