"""Scheduler interface and schedulable execution units.

A *unit* is the atom the hardware scheduler places onto engines:

- ``ME_UTOP``    -- a NeuISA ME uTOp: exactly one ME, plus an embedded
  VE post-processing stream (``ve_rate`` VE-cycles per ME-cycle);
- ``VE_UTOP``    -- a NeuISA VE uTOp: elastic over up to ``parallelism``
  VEs;
- ``VLIW_ME``    -- a VLIW-compiled ME operator: an *indivisible block*
  of ``me_engines_needed`` MEs (the coupling of paper SectionII-C);
- ``VLIW_VE``    -- a VLIW-compiled VE-only operator.

Every epoch the active scheduler produces a :class:`Decision`: which
units run, with how many engines, which are harvesting foreign engines,
which get preempted, and when the next mandatory re-decision happens.
The engine (:mod:`repro.sim.engine`) validates capacity and advances the
fluid state.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.errors import SchedulerError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Simulator, Tenant

_unit_ids = itertools.count()


class UnitKind(enum.Enum):
    ME_UTOP = "me_utop"
    VE_UTOP = "ve_utop"
    VLIW_ME = "vliw_me"
    VLIW_VE = "vliw_ve"


class UnitState(enum.Enum):
    READY = "ready"
    RUNNING = "running"
    DONE = "done"


@dataclass
class ExecUnit:
    """Runtime state of one schedulable unit."""

    kind: UnitKind
    owner: int
    op_index: int
    op_name: str
    request_id: int
    me_engines_needed: int
    remaining_me: float
    remaining_ve: float
    ve_rate: float
    hbm_rate: float
    parallelism: int = 1
    unit_id: int = field(default_factory=lambda: next(_unit_ids))
    state: UnitState = UnitState.READY
    harvesting: bool = False
    #: Engine-count this unit currently holds (set by the engine).
    granted_me: int = 0
    granted_ve: float = 0.0

    #: Cached kind check (hot path) -- set in __post_init__.
    is_me_unit: bool = field(init=False, default=False)

    def __post_init__(self) -> None:
        if self.me_engines_needed < 0:
            raise SchedulerError("negative engine requirement")
        if self.remaining_me < 0 or self.remaining_ve < 0:
            raise SchedulerError("negative remaining work")
        self.is_me_unit = self.kind in (UnitKind.ME_UTOP, UnitKind.VLIW_ME)

    @property
    def done(self) -> bool:
        return self.state is UnitState.DONE

    def granted_me_or(self, default: int) -> int:
        """Current engine grant, or ``default`` before any grant."""
        return self.granted_me if self.granted_me > 0 else default

    def __hash__(self) -> int:
        return self.unit_id

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ExecUnit) and other.unit_id == self.unit_id


@dataclass
class Decision:
    """One epoch's scheduling decision.

    ``running_me`` grants engines to ME units (value = engine count; must
    equal the unit's ``me_engines_needed`` for VLIW units and 1 for ME
    uTOps).  ``harvested_me`` marks how many of a unit's granted engines
    are *foreign* (harvested) -- used for accounting and reclaim.
    ``ve_alloc`` grants fractional VEs: for ME units this feeds the
    embedded post-processing stream, for VE units it is the execution
    parallelism.  ``preempt`` lists units to preempt before this epoch
    starts (they return to READY and their engines pay the reclaim
    penalty).  ``next_decision_at`` forces a re-decision (quantum expiry).
    """

    running_me: Dict[ExecUnit, int] = field(default_factory=dict)
    harvested_me: Dict[ExecUnit, int] = field(default_factory=dict)
    ve_alloc: Dict[ExecUnit, float] = field(default_factory=dict)
    preempt: List[ExecUnit] = field(default_factory=list)
    #: Which tenant each preempted unit's engines are reclaimed for; the
    #: reclaim penalty reduces that tenant's usable capacity until it
    #: expires.  Defaults to the preempted unit's owner.
    reclaim_owners: Dict[ExecUnit, int] = field(default_factory=dict)
    next_decision_at: Optional[float] = None


class SchedulerBase:
    """Base class for all scheduling policies."""

    #: Human-readable policy name used in experiment tables.
    name = "base"

    def decide(self, sim: "Simulator") -> Decision:
        raise NotImplementedError

    # Helpers shared by concrete schedulers ----------------------------
    @staticmethod
    def ready_me_units(tenant: "Tenant") -> List[ExecUnit]:
        return [
            u
            for u in tenant.active_units
            if u.is_me_unit and u.state is not UnitState.DONE
        ]

    @staticmethod
    def ready_ve_units(tenant: "Tenant") -> List[ExecUnit]:
        return [
            u
            for u in tenant.active_units
            if not u.is_me_unit and u.state is not UnitState.DONE
        ]

    @staticmethod
    def embedded_ve_demand(unit: ExecUnit) -> float:
        """VE engines needed to keep an ME unit's embedded stream at full
        pace (ve_rate is per granted engine for VLIW blocks)."""
        if unit.kind is UnitKind.VLIW_ME:
            return unit.ve_rate
        return unit.ve_rate

    @staticmethod
    def allocate_ve(
        me_units: List[ExecUnit],
        ve_units: List[ExecUnit],
        capacity: float,
    ) -> Dict[ExecUnit, float]:
        """Standard VE split: embedded streams of running ME units first
        (paper SectionIII-E: "the scheduler prioritizes those from ME
        uTOps, which allows the occupied MEs to be freed as soon as
        possible"), then VE units up to their parallelism."""
        alloc: Dict[ExecUnit, float] = {}
        remaining = capacity
        for unit in me_units:
            want = min(remaining, unit.ve_rate * max(1, unit.me_engines_needed))
            if want > 0:
                alloc[unit] = want
                remaining -= want
        for unit in ve_units:
            if remaining <= 1e-12:
                break
            want = min(remaining, float(unit.parallelism))
            if want > 0:
                alloc[unit] = want
                remaining -= want
        return alloc
