"""Scheduler interface and schedulable execution units.

A *unit* is the atom the hardware scheduler places onto engines:

- ``ME_UTOP``    -- a NeuISA ME uTOp: exactly one ME, plus an embedded
  VE post-processing stream (``ve_rate`` VE-cycles per ME-cycle);
- ``VE_UTOP``    -- a NeuISA VE uTOp: elastic over up to ``parallelism``
  VEs;
- ``VLIW_ME``    -- a VLIW-compiled ME operator: an *indivisible block*
  of ``me_engines_needed`` MEs (the coupling of paper SectionII-C);
- ``VLIW_VE``    -- a VLIW-compiled VE-only operator.

Every epoch the active scheduler produces a :class:`Decision`: which
units run, with how many engines, which are harvesting foreign engines,
which get preempted, and when the next mandatory re-decision happens.
The engine (:mod:`repro.sim.engine`) validates capacity and advances the
fluid state.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Hashable, List, Optional, Tuple

from repro.errors import SchedulerError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Simulator, Tenant

_unit_ids = itertools.count()


class UnitKind(enum.Enum):
    ME_UTOP = "me_utop"
    VE_UTOP = "ve_utop"
    VLIW_ME = "vliw_me"
    VLIW_VE = "vliw_ve"


class UnitState(enum.Enum):
    READY = "ready"
    RUNNING = "running"
    DONE = "done"


@dataclass(slots=True)
class ExecUnit:
    """Runtime state of one schedulable unit.

    The class is slotted and hot-path instantiation goes through
    :meth:`from_template`, which skips ``__init__`` validation: tenants
    replay the same compiled graph per request, so the per-unit specs are
    validated once when the template is built (see
    ``Tenant._unit_templates``) and then stamped onto fresh (or pooled)
    objects per request.
    """

    kind: UnitKind
    owner: int
    op_index: int
    op_name: str
    request_id: int
    me_engines_needed: int
    remaining_me: float
    remaining_ve: float
    ve_rate: float
    hbm_rate: float
    parallelism: int = 1
    #: Identity of the validated template this unit was stamped from
    #: (-1 for directly constructed units).  Units sharing a template id
    #: are attribute-identical, which lets the engine's fingerprint use
    #: one small int instead of hashing every float field.
    tpl_id: int = -1
    unit_id: int = field(default_factory=lambda: next(_unit_ids))
    state: UnitState = UnitState.READY
    harvesting: bool = False
    #: Engine-count this unit currently holds (set by the engine).
    granted_me: int = 0
    granted_ve: float = 0.0

    #: Cached kind check (hot path) -- set in __post_init__.
    is_me_unit: bool = field(init=False, default=False)

    def __post_init__(self) -> None:
        if self.me_engines_needed < 0:
            raise SchedulerError("negative engine requirement")
        if self.remaining_me < 0 or self.remaining_ve < 0:
            raise SchedulerError("negative remaining work")
        self.is_me_unit = self.kind in (UnitKind.ME_UTOP, UnitKind.VLIW_ME)

    @property
    def done(self) -> bool:
        return self.state is UnitState.DONE

    def granted_me_or(self, default: int) -> int:
        """Current engine grant, or ``default`` before any grant."""
        return self.granted_me if self.granted_me > 0 else default

    @classmethod
    def from_template(
        cls,
        template: Tuple,
        owner: int,
        request_id: int,
        pool: Optional[List["ExecUnit"]] = None,
    ) -> "ExecUnit":
        """Stamp a pre-validated unit spec onto a fresh schedulable unit.

        ``template`` is the tuple built by the tenant's template cache:
        ``(kind, is_me_unit, me_engines_needed, remaining_me,
        remaining_ve, ve_rate, hbm_rate, parallelism, op_index, op_name,
        tpl_id)``.  Objects from ``pool`` (the tenant's free-list) are
        recycled; every mutable field is reset and a fresh ``unit_id`` is
        taken so scheduling order stays FIFO-by-creation.
        """
        unit = pool.pop() if pool else object.__new__(cls)
        (
            unit.kind,
            unit.is_me_unit,
            unit.me_engines_needed,
            unit.remaining_me,
            unit.remaining_ve,
            unit.ve_rate,
            unit.hbm_rate,
            unit.parallelism,
            unit.op_index,
            unit.op_name,
            unit.tpl_id,
        ) = template
        unit.owner = owner
        unit.request_id = request_id
        unit.unit_id = next(_unit_ids)
        unit.state = UnitState.READY
        unit.harvesting = False
        unit.granted_me = 0
        unit.granted_ve = 0.0
        return unit

    def __hash__(self) -> int:
        return self.unit_id

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ExecUnit) and other.unit_id == self.unit_id


@dataclass
class Decision:
    """One epoch's scheduling decision.

    ``running_me`` grants engines to ME units (value = engine count; must
    equal the unit's ``me_engines_needed`` for VLIW units and 1 for ME
    uTOps).  ``harvested_me`` marks how many of a unit's granted engines
    are *foreign* (harvested) -- used for accounting and reclaim.
    ``ve_alloc`` grants fractional VEs: for ME units this feeds the
    embedded post-processing stream, for VE units it is the execution
    parallelism.  ``preempt`` lists units to preempt before this epoch
    starts (they return to READY and their engines pay the reclaim
    penalty).  ``next_decision_at`` forces a re-decision (quantum expiry).
    """

    running_me: Dict[ExecUnit, int] = field(default_factory=dict)
    harvested_me: Dict[ExecUnit, int] = field(default_factory=dict)
    ve_alloc: Dict[ExecUnit, float] = field(default_factory=dict)
    preempt: List[ExecUnit] = field(default_factory=list)
    #: Which tenant each preempted unit's engines are reclaimed for; the
    #: reclaim penalty reduces that tenant's usable capacity until it
    #: expires.  Defaults to the preempted unit's owner.
    reclaim_owners: Dict[ExecUnit, int] = field(default_factory=dict)
    next_decision_at: Optional[float] = None


def unit_state_fingerprint(
    sim: "Simulator",
) -> Tuple[Hashable, List[ExecUnit]]:
    """Shared fingerprint for state-free schedulers (Neu10, Neu10-NH).

    Captures, per tenant, every unit attribute those policies read
    (kind, state, engine requirement, current grant, VE/HBM rates,
    parallelism) plus the tenant's allocation and pending reclaim count,
    and -- because displaced-harvester and VE-harvest ordering tie-break
    on ``unit_id`` *across* tenants -- the cross-tenant FIFO permutation
    of the active units.  Two epochs with equal keys are guaranteed to
    produce identical decisions, so the engine may replay a memoised one.
    """
    units: List[ExecUnit] = []
    flat: List = []
    # Small-int codes keep the key cheap to build and hash (enum members
    # hash through a Python-level __hash__).  Units stamped from a
    # validated template pack (template, state, grant) into one int --
    # the template id pins every decision-relevant static attribute;
    # directly constructed units fall back to a full attribute tuple (an
    # int never equals a tuple, so the encodings cannot collide).  The
    # tenant boundary marker -1 keeps per-tenant runs distinct; tenant
    # allocations and priorities are deliberately absent because they
    # are constant for the lifetime of the Simulator that owns the memo.
    me_utop = UnitKind.ME_UTOP
    ve_utop = UnitKind.VE_UTOP
    vliw_me = UnitKind.VLIW_ME
    ready = UnitState.READY
    running = UnitState.RUNNING
    append = flat.append
    uappend = units.append
    for tenant in sim.tenants:
        append(-1)
        for u in tenant.active_units:
            uappend(u)
            s = u.state
            sc = 0 if s is ready else 1 if s is running else 2
            tid = u.tpl_id
            granted = u.granted_me
            if tid >= 0 and granted < 64:
                append(tid * 256 + sc * 64 + granted)
            else:
                k = u.kind
                append((
                    0 if k is me_utop else 1 if k is ve_utop
                    else 2 if k is vliw_me else 3,
                    sc,
                    u.me_engines_needed,
                    granted,
                    u.ve_rate,
                    u.hbm_rate,
                    u.parallelism,
                ))
    if sim.reclaims:
        rc = tuple(sim.reclaiming_for(t.tenant_id) for t in sim.tenants)
    else:
        rc = None
    n = len(units)
    rank_perm: Tuple[int, ...] = ()
    if n > 1:
        ids = [u.unit_id for u in units]
        prev = ids[0]
        for cur in ids[1:]:
            if cur < prev:
                rank_perm = tuple(sorted(range(n), key=ids.__getitem__))
                break
            prev = cur
        # Already in FIFO order (the common case): the empty marker is
        # canonical for the identity permutation.
    return (rc, rank_perm, tuple(flat)), units


class SchedulerBase:
    """Base class for all scheduling policies."""

    #: Human-readable policy name used in experiment tables.
    name = "base"

    def decide(self, sim: "Simulator") -> Decision:
        raise NotImplementedError

    def state_fingerprint(
        self, sim: "Simulator"
    ) -> Optional[Tuple[Hashable, List[ExecUnit]]]:
        """Cheap signature of every input :meth:`decide` reads, or None.

        Schedulers whose decision is a pure function of the current unit
        and reclaim state (no wall-clock, no accumulated service
        counters) return ``(key, units)`` where ``key`` hashes the state
        and ``units`` lists every active unit in fingerprint order.  The
        engine's fast path uses the key to memoise decisions (and the
        epoch's progress rates) across structurally identical epochs --
        closed-loop tenants replay the same graph per request, so the
        same states recur thousands of times.  Returning ``None`` (the
        default) forces a fresh :meth:`decide` call every epoch, which is
        required for time- or history-dependent policies (PMT, V10,
        Neu10-temporal) and for any custom scheduler that does not opt
        in.
        """
        return None

    def memo_context(self) -> Optional[Hashable]:
        """Policy identity for sharing decision memos across simulators.

        Schedulers that support :meth:`state_fingerprint` return a
        hashable describing every constructor knob that influences
        decisions; the engine combines it with the core configuration
        and tenant allocations to share one plan memo across all
        structurally identical simulations in the process (repeated
        measurement windows, sweep points, cluster segments).  ``None``
        (the default) keeps the memo private to each Simulator.
        """
        return None

    # Helpers shared by concrete schedulers ----------------------------
    @staticmethod
    def ready_me_units(tenant: "Tenant") -> List[ExecUnit]:
        return [
            u
            for u in tenant.active_units
            if u.is_me_unit and u.state is not UnitState.DONE
        ]

    @staticmethod
    def ready_ve_units(tenant: "Tenant") -> List[ExecUnit]:
        return [
            u
            for u in tenant.active_units
            if not u.is_me_unit and u.state is not UnitState.DONE
        ]

    @staticmethod
    def embedded_ve_demand(unit: ExecUnit) -> float:
        """VE engines needed to keep an ME unit's embedded stream at full
        pace (ve_rate is per granted engine for VLIW blocks)."""
        if unit.kind is UnitKind.VLIW_ME:
            return unit.ve_rate
        return unit.ve_rate

    @staticmethod
    def allocate_ve(
        me_units: List[ExecUnit],
        ve_units: List[ExecUnit],
        capacity: float,
    ) -> Dict[ExecUnit, float]:
        """Standard VE split: embedded streams of running ME units first
        (paper SectionIII-E: "the scheduler prioritizes those from ME
        uTOps, which allows the occupied MEs to be freed as soon as
        possible"), then VE units up to their parallelism."""
        alloc: Dict[ExecUnit, float] = {}
        remaining = capacity
        for unit in me_units:
            want = min(remaining, unit.ve_rate * max(1, unit.me_engines_needed))
            if want > 0:
                alloc[unit] = want
                remaining -= want
        for unit in ve_units:
            if remaining <= 1e-12:
                break
            want = min(remaining, float(unit.parallelism))
            if want > 0:
                alloc[unit] = want
                remaining -= want
        return alloc
