"""Neu10-NoHarvest: static spatial partitioning (MIG-like).

Each vNPU owns a dedicated slice of MEs and VEs.  uTOps are scheduled
only within the owner's slice; idle foreign engines are never used.
This is the paper's ``Neu10-NH`` baseline ("resembles existing static
partitioning techniques such as NVIDIA Multi-Instance GPU"), and is also
the isolation reference: a tenant's performance under Neu10-NH must
equal its solo performance on an equally sized core (property-tested).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

from repro.errors import SchedulerError
from repro.sim.scheduler_base import (
    Decision,
    ExecUnit,
    SchedulerBase,
    UnitState,
    unit_state_fingerprint,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator, Tenant


def sort_me_candidates(units: List[ExecUnit]) -> List[ExecUnit]:
    """Stable scheduling order: already-running units first (continuity,
    avoids gratuitous preemption), then FIFO by unit id."""
    return sorted(
        units,
        key=lambda u: (u.state is not UnitState.RUNNING, u.unit_id),
    )


def allocate_tenant_ve(
    tenant: "Tenant",
    granted_me_units: List[ExecUnit],
    cap: float,
    embedded_first: bool = True,
) -> Dict[ExecUnit, float]:
    """VE split within one tenant's VE budget.

    With ``embedded_first`` (the paper's policy, SectionIII-E) the
    embedded streams of running ME units are served before VE uTOps
    "which allows the occupied MEs to be freed as soon as possible";
    the inverted order exists as an ablation.
    """
    alloc: Dict[ExecUnit, float] = {}
    remaining = cap

    def serve_embedded(budget: float) -> float:
        for unit in granted_me_units:
            if budget <= 1e-12:
                break
            # Grants always equal me_engines_needed, so size the stream
            # from the requirement (grants are applied after decide).
            need = unit.ve_rate * max(1, unit.me_engines_needed)
            if need <= 0:
                continue
            got = min(budget, need)
            alloc[unit] = alloc.get(unit, 0.0) + got
            budget -= got
        return budget

    def serve_ve_utops(budget: float) -> float:
        for unit in tenant.active_units:
            if unit.is_me_unit or unit.done:
                continue
            if budget <= 1e-12:
                break
            got = min(budget, float(unit.parallelism))
            if got > 0:
                alloc[unit] = alloc.get(unit, 0.0) + got
                budget -= got
        return budget

    if embedded_first:
        remaining = serve_ve_utops(serve_embedded(remaining))
    else:
        remaining = serve_embedded(serve_ve_utops(remaining))
    return alloc


def unmet_ve_demand(
    tenant: "Tenant",
    granted_me_units: List[ExecUnit],
    alloc: Dict[ExecUnit, float],
) -> List[ExecUnit]:
    """Units of ``tenant`` that could use more VEs than allocated."""
    needy: List[ExecUnit] = []
    for unit in granted_me_units:
        need = unit.ve_rate * max(1, unit.me_engines_needed)
        if need > alloc.get(unit, 0.0) + 1e-12:
            needy.append(unit)
    for unit in tenant.active_units:
        if unit.is_me_unit or unit.done:
            continue
        if float(unit.parallelism) > alloc.get(unit, 0.0) + 1e-12:
            needy.append(unit)
    return needy


class StaticPartitionScheduler(SchedulerBase):
    """Dedicated per-vNPU engine slices without harvesting."""

    name = "neu10-nh"

    def __init__(self, strict: bool = True) -> None:
        #: When True, verify the tenant allocations fit the core.
        self.strict = strict

    def state_fingerprint(self, sim: "Simulator"):
        """Static partitions only read unit and allocation state."""
        return unit_state_fingerprint(sim)

    def memo_context(self):
        return ("neu10-nh", self.strict)

    def decide(self, sim: "Simulator") -> Decision:
        if self.strict:
            total_me = sum(t.alloc_mes for t in sim.tenants)
            total_ve = sum(t.alloc_ves for t in sim.tenants)
            if total_me > sim.core.num_mes or total_ve > sim.core.num_ves:
                raise SchedulerError(
                    "static partition oversubscribes the core "
                    f"({total_me} MEs / {total_ve} VEs)"
                )
        decision = Decision()
        for tenant in sim.tenants:
            cap = tenant.alloc_mes
            granted_units: List[ExecUnit] = []
            used = 0
            for unit in sort_me_candidates(self.ready_me_units(tenant)):
                need = unit.me_engines_needed
                if used + need > cap:
                    continue
                decision.running_me[unit] = need
                granted_units.append(unit)
                used += need
            ve_alloc = allocate_tenant_ve(tenant, granted_units, tenant.alloc_ves)
            decision.ve_alloc.update(ve_alloc)
        return decision
