"""Hardware-cost accounting for the NeuISA scheduler (paper SectionIII-G).

The paper prototypes the uTOp scheduler in Verilog and synthesises it
with FreePDK-15nm, reporting a 0.04% die-area overhead on a TPUv4 chip.
We reproduce the *accounting*: the scheduler's storage structures are
enumerated from the architecture (contexts, PCs, instruction queues,
execution-table cache), converted to an area estimate via standard
SRAM/flop area coefficients, and compared against the TPUv4 die size.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import NpuCoreConfig

#: TPUv4 die area in mm^2 (Jouppi et al., ~780 mm^2 class datacenter die;
#: the paper's percentage is computed against the whole chip).
TPU_DIE_AREA_MM2 = 780.0
#: Approximate SRAM density at a 15nm-class node, mm^2 per KiB.
SRAM_MM2_PER_KIB = 0.0008
#: Flop/logic overhead multiplier on top of raw storage.
LOGIC_OVERHEAD = 1.6

#: Maximum collocated vNPU contexts the scheduler tracks.
MAX_VNPU_CONTEXTS = 8
#: Bytes per vNPU context: PCs, config, priority counters.
CONTEXT_BYTES = 64
#: Instruction-queue depth per engine (VLIW-width entries).
QUEUE_DEPTH = 16
#: Bytes per instruction-queue entry.
QUEUE_ENTRY_BYTES = 32
#: Cached uTOp execution-table rows and bytes per cell.
TABLE_ROWS = 64
TABLE_CELL_BYTES = 4


@dataclass(frozen=True)
class SchedulerCost:
    """Storage and area estimate of the uTOp scheduler."""

    context_bytes: int
    queue_bytes: int
    table_bytes: int
    total_bytes: int
    area_mm2: float
    die_fraction: float

    @property
    def die_percent(self) -> float:
        return self.die_fraction * 100.0


def scheduler_cost(core: NpuCoreConfig) -> SchedulerCost:
    """Estimate the uTOp scheduler hardware for ``core``.

    Structure sizes follow SectionIII-E: "For an NPU core with nx MEs and
    ny VEs, there are nx ME uTOp instruction queues and ny VE uTOp
    instruction queues", plus per-vNPU contexts and the execution-table
    cache.
    """
    context_bytes = MAX_VNPU_CONTEXTS * CONTEXT_BYTES
    num_queues = core.num_mes + core.num_ves
    queue_bytes = num_queues * QUEUE_DEPTH * QUEUE_ENTRY_BYTES
    row_cells = core.num_mes + 1  # nx ME entries + 1 VE entry per row
    table_bytes = TABLE_ROWS * row_cells * TABLE_CELL_BYTES
    total = context_bytes + queue_bytes + table_bytes
    area = (total / 1024.0) * SRAM_MM2_PER_KIB * LOGIC_OVERHEAD
    return SchedulerCost(
        context_bytes=context_bytes,
        queue_bytes=queue_bytes,
        table_bytes=table_bytes,
        total_bytes=total,
        area_mm2=area,
        die_fraction=area / TPU_DIE_AREA_MM2,
    )
