"""HBM bandwidth sharing model.

Collocated vNPUs share the off-chip HBM channel.  Neu10 "allows fair
sharing of HBM bandwidth by default" (paper SectionIII-B), which we model
as max-min fair allocation across the currently memory-active uTOps: each
consumer gets its full demand when the channel is uncontended; under
contention, small consumers are satisfied first and the remainder is
split evenly among the large ones.

A uTOp whose allocation covers only a fraction ``f`` of its demand
progresses at rate ``f`` when memory-bound (per-operator roofline).
"""

from __future__ import annotations

from typing import Dict, Hashable, Mapping

from repro.errors import SimulationError


def maxmin_fair(demands: Mapping[Hashable, float], capacity: float) -> Dict[Hashable, float]:
    """Max-min fair allocation of ``capacity`` across ``demands``.

    Returns the allocated rate per key.  Zero-demand keys get zero.
    """
    if capacity < 0:
        raise SimulationError("capacity cannot be negative")
    for key, demand in demands.items():
        if demand < 0:
            raise SimulationError(f"demand for {key!r} cannot be negative")
    alloc: Dict[Hashable, float] = {k: 0.0 for k in demands}
    pending = [(d, k) for k, d in demands.items() if d > 0]
    pending.sort(key=lambda item: item[0])
    remaining = capacity
    count = len(pending)
    for i, (demand, key) in enumerate(pending):
        share = remaining / (count - i)
        granted = min(demand, share)
        alloc[key] = granted
        remaining -= granted
    return alloc


def slowdown_factors(
    demands: Mapping[Hashable, float], capacity: float
) -> Dict[Hashable, float]:
    """Progress-rate factor per consumer: ``alloc / demand`` clamped to
    [0, 1]; consumers with no memory demand run at full speed (1.0)."""
    alloc = maxmin_fair(demands, capacity)
    factors: Dict[Hashable, float] = {}
    for key, demand in demands.items():
        if demand <= 0:
            factors[key] = 1.0
        else:
            factors[key] = min(1.0, alloc[key] / demand)
    return factors


def aggregate_demand(demands: Mapping[Hashable, float]) -> float:
    return sum(d for d in demands.values() if d > 0)


def hierarchical_fair_factors(
    demands: Mapping[Hashable, float],
    owners: Mapping[Hashable, int],
    capacity: float,
) -> Dict[Hashable, float]:
    """Two-level fair sharing: bandwidth is first split max-min fair
    *across vNPUs* ("Neu10 allows fair sharing of HBM bandwidth" between
    tenants, SectionIII-B), then max-min fair among each vNPU's active
    uTOps.  This protects a memory-hungry tenant from a collocated
    tenant that harvests many engines and multiplies its stream count.
    """
    per_owner: Dict[int, float] = {}
    for key, demand in demands.items():
        if demand <= 0:
            continue
        owner = owners[key]
        per_owner[owner] = per_owner.get(owner, 0.0) + demand
    owner_alloc = maxmin_fair(per_owner, capacity)
    factors: Dict[Hashable, float] = {}
    for owner, budget in owner_alloc.items():
        inner = {
            k: d for k, d in demands.items() if owners[k] == owner and d > 0
        }
        inner_alloc = maxmin_fair(inner, budget)
        for key, granted in inner_alloc.items():
            factors[key] = min(1.0, granted / demands[key])
    for key, demand in demands.items():
        if demand <= 0:
            factors[key] = 1.0
    return factors
