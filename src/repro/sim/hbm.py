"""HBM bandwidth sharing model.

Collocated vNPUs share the off-chip HBM channel.  Neu10 "allows fair
sharing of HBM bandwidth by default" (paper SectionIII-B), which we model
as max-min fair allocation across the currently memory-active uTOps: each
consumer gets its full demand when the channel is uncontended; under
contention, small consumers are satisfied first and the remainder is
split evenly among the large ones.

A uTOp whose allocation covers only a fraction ``f`` of its demand
progresses at rate ``f`` when memory-bound (per-operator roofline).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Hashable, Mapping, Sequence, Tuple

from repro.errors import SimulationError

try:  # numpy accelerates the bulk waterfill; the scalar path needs nothing.
    import numpy as _np
except ImportError:  # pragma: no cover - the toolchain ships numpy
    _np = None


def maxmin_fair(demands: Mapping[Hashable, float], capacity: float) -> Dict[Hashable, float]:
    """Max-min fair allocation of ``capacity`` across ``demands``.

    Returns the allocated rate per key.  Zero-demand keys get zero.
    """
    if capacity < 0:
        raise SimulationError("capacity cannot be negative")
    for key, demand in demands.items():
        if demand < 0:
            raise SimulationError(f"demand for {key!r} cannot be negative")
    alloc: Dict[Hashable, float] = {k: 0.0 for k in demands}
    pending = [(d, k) for k, d in demands.items() if d > 0]
    pending.sort(key=lambda item: item[0])
    remaining = capacity
    count = len(pending)
    for i, (demand, key) in enumerate(pending):
        share = remaining / (count - i)
        granted = min(demand, share)
        alloc[key] = granted
        remaining -= granted
    return alloc


def slowdown_factors(
    demands: Mapping[Hashable, float], capacity: float
) -> Dict[Hashable, float]:
    """Progress-rate factor per consumer: ``alloc / demand`` clamped to
    [0, 1]; consumers with no memory demand run at full speed (1.0)."""
    alloc = maxmin_fair(demands, capacity)
    factors: Dict[Hashable, float] = {}
    for key, demand in demands.items():
        if demand <= 0:
            factors[key] = 1.0
        else:
            factors[key] = min(1.0, alloc[key] / demand)
    return factors


def aggregate_demand(demands: Mapping[Hashable, float]) -> float:
    return sum(d for d in demands.values() if d > 0)


def hierarchical_fair_factors(
    demands: Mapping[Hashable, float],
    owners: Mapping[Hashable, int],
    capacity: float,
) -> Dict[Hashable, float]:
    """Two-level fair sharing: bandwidth is first split max-min fair
    *across vNPUs* ("Neu10 allows fair sharing of HBM bandwidth" between
    tenants, SectionIII-B), then max-min fair among each vNPU's active
    uTOps.  This protects a memory-hungry tenant from a collocated
    tenant that harvests many engines and multiplies its stream count.
    """
    per_owner: Dict[int, float] = {}
    for key, demand in demands.items():
        if demand <= 0:
            continue
        owner = owners[key]
        per_owner[owner] = per_owner.get(owner, 0.0) + demand
    owner_alloc = maxmin_fair(per_owner, capacity)
    factors: Dict[Hashable, float] = {}
    for owner, budget in owner_alloc.items():
        inner = {
            k: d for k, d in demands.items() if owners[k] == owner and d > 0
        }
        inner_alloc = maxmin_fair(inner, budget)
        for key, granted in inner_alloc.items():
            factors[key] = min(1.0, granted / demands[key])
    for key, demand in demands.items():
        if demand <= 0:
            factors[key] = 1.0
    return factors


def maxmin_fair_vectorized(
    demands: Sequence[float], capacity: float
) -> "Tuple[float, ...]":
    """Numpy waterfill over a demand *vector* (positional API).

    Mathematically equivalent to :func:`maxmin_fair` but computed with
    vectorised prefix sums, so large consumer sets (cluster-scale sweeps,
    offline analysis) avoid the Python loop.  The two implementations can
    differ in the last floating-point bits because the reduction order
    differs; the simulation engine therefore uses the scalar waterfill
    (via :class:`FairFactorCache`) and this entry point serves bulk
    analysis paths.
    """
    if capacity < 0:
        raise SimulationError("capacity cannot be negative")
    if _np is None or len(demands) < 2:
        ordered = maxmin_fair(dict(enumerate(demands)), capacity)
        return tuple(ordered[i] for i in range(len(demands)))
    d = _np.asarray(demands, dtype=float)
    if (d < 0).any():
        raise SimulationError("demand cannot be negative")
    alloc = _np.zeros_like(d)
    pos = d > 0
    active = d[pos]
    order = _np.argsort(active, kind="stable")
    sorted_d = active[order]
    n = len(sorted_d)
    # remaining capacity before consumer i = capacity - sum of smaller
    # demands that were fully satisfied; the first index where the even
    # share no longer covers the demand marks the waterline.
    prefix = _np.concatenate(([0.0], _np.cumsum(sorted_d)[:-1]))
    shares = (capacity - prefix) / _np.arange(n, 0, -1)
    unsatisfied = sorted_d > shares
    granted = _np.where(unsatisfied, 0.0, sorted_d)
    if unsatisfied.any():
        first = int(_np.argmax(unsatisfied))
        level = max(0.0, (capacity - float(prefix[first])) / (n - first))
        granted[first:] = _np.minimum(sorted_d[first:], level)
    out = _np.zeros(n)
    out[order] = granted
    alloc[pos] = out
    return tuple(float(a) for a in alloc)


class FairFactorCache:
    """Exact memo for per-epoch HBM slowdown factors.

    The engine's hot loop recomputes max-min fair factors every epoch,
    yet the demand vector repeats heavily: closed-loop tenants replay the
    same compiled graph per request, so the same ``(owner, demand)``
    signatures recur thousands of times.  The cache keys on the *exact*
    float demands (plus owners and policy), so a hit returns bit-identical
    factors to a fresh computation; misses fall through to the scalar
    waterfill.  Entries are evicted FIFO once ``maxsize`` is reached.
    """

    def __init__(
        self, capacity: float, policy: str = "hierarchical", maxsize: int = 4096
    ) -> None:
        if policy not in ("hierarchical", "flat"):
            raise SimulationError(f"unknown HBM policy {policy!r}")
        if maxsize < 1:
            raise SimulationError("cache needs room for at least one entry")
        self.capacity = capacity
        self.policy = policy
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._entries: "OrderedDict[Tuple, Tuple[float, ...]]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def factors(
        self, owners: Sequence[int], demands: Sequence[float]
    ) -> Tuple[float, ...]:
        """Positional slowdown factors for one epoch's running units."""
        key = (tuple(owners), tuple(demands))
        cached = self._entries.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        keyed = dict(enumerate(demands))
        if self.policy == "hierarchical":
            owner_map = dict(enumerate(owners))
            by_key = hierarchical_fair_factors(keyed, owner_map, self.capacity)
        else:
            by_key = slowdown_factors(keyed, self.capacity)
        result = tuple(by_key[i] for i in range(len(demands)))
        if len(self._entries) >= self.maxsize:
            self._entries.popitem(last=False)
        self._entries[key] = result
        return result
