"""Cycle-level behavioural NPU simulator.

The simulator advances in *epochs* between scheduling events (uTOp
completion, request arrival, quantum expiry, preemption-reclaim expiry).
Within an epoch the engine assignment is constant and every running uTOp
progresses fluidly at a rate set by its compute demand, its share of the
HBM bandwidth (max-min fair) and -- for ME uTOps -- the VE allocation
available for its embedded post-processing stream.  This yields
cycle-resolution timestamps without per-cycle iteration, which is what
lets whole multi-tenant serving experiments run in seconds.

Public entry points:

- :class:`repro.sim.engine.Simulator` -- the event loop.
- :class:`repro.sim.engine.Tenant` -- one vNPU + workload + request stream.
- scheduler implementations under ``repro.sim.sched_*`` and
  :mod:`repro.baselines`.
"""

from repro.sim.engine import Simulator, Tenant, TenantResult
from repro.sim.hbm import maxmin_fair
from repro.sim.sched_neu10 import Neu10Scheduler
from repro.sim.sched_static import StaticPartitionScheduler
from repro.sim.sched_temporal import TemporalNeu10Scheduler
from repro.sim.scheduler_base import Decision, SchedulerBase

__all__ = [
    "Decision",
    "Neu10Scheduler",
    "SchedulerBase",
    "Simulator",
    "StaticPartitionScheduler",
    "TemporalNeu10Scheduler",
    "Tenant",
    "TenantResult",
    "maxmin_fair",
]
