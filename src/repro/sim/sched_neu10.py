"""The Neu10 uTOp scheduler: spatial isolation + ME/VE harvesting.

Implements paper SectionIII-E rule for rule (spatial-isolated mode):

1. *Full-allocation priority*: if a vNPU has ``n`` home MEs and at least
   ``n`` ready ME uTOps, it gets all ``n`` -- harvesters holding its
   engines are preempted (paying the 256-cycle reclaim penalty, which the
   owner absorbs as wait time).
2. *Surplus harvesting*: engines a vNPU cannot fill (too few ready ME
   uTOps) are offered to collocated vNPUs with excess ready uTOps.
3. *VE scheduling*: a ready VE uTOp always executes if any VE capacity
   remains; within a vNPU's VE budget, embedded streams of running ME
   uTOps are prioritised so MEs drain as fast as possible; unused VE
   budget is harvested by collocated vNPUs (paper Fig. 18b).

Only ME uTOps harvest -- VLIW-compiled coupled blocks cannot change
engine counts at runtime, which is exactly the ISA limitation NeuISA
removes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

from repro.errors import SchedulerError
from repro.sim.scheduler_base import (
    Decision,
    ExecUnit,
    SchedulerBase,
    UnitKind,
    UnitState,
    unit_state_fingerprint,
)
from repro.sim.sched_static import (
    allocate_tenant_ve,
    sort_me_candidates,
    unmet_ve_demand,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator, Tenant


class Neu10Scheduler(SchedulerBase):
    """Spatial-isolated vNPUs with dynamic uTOp harvesting."""

    name = "neu10"

    def __init__(
        self, harvesting: bool = True, ve_embedded_first: bool = True
    ) -> None:
        self.harvesting = harvesting
        #: Serve ME uTOps' embedded VE streams before VE uTOps (the
        #: paper's policy); False inverts the order (ablation).
        self.ve_embedded_first = ve_embedded_first
        #: Tenants whose grants were trimmed this decision (reset per call).
        self._trimmed: List[int] = []

    # ------------------------------------------------------------------
    def state_fingerprint(self, sim: "Simulator"):
        """Neu10 decisions depend only on unit/reclaim/allocation state,
        never on the clock or accumulated service -- memoisable."""
        return unit_state_fingerprint(sim)

    def memo_context(self):
        return ("neu10", self.harvesting, self.ve_embedded_first)

    # ------------------------------------------------------------------
    def decide(self, sim: "Simulator") -> Decision:
        self._trimmed = []
        decision = Decision()
        avail = sim.available_mes

        # ---- Phase A: home grants --------------------------------------
        granted_units: Dict[int, List[ExecUnit]] = {}
        grant_order: List[ExecUnit] = []
        total_home = 0
        for tenant in sim.tenants:
            cap = max(0, tenant.alloc_mes - sim.reclaiming_for(tenant.tenant_id))
            used = 0
            mine: List[ExecUnit] = []
            for unit in sort_me_candidates(self.ready_me_units(tenant)):
                need = unit.me_engines_needed
                if used + need > cap:
                    continue
                mine.append(unit)
                grant_order.append(unit)
                used += need
            granted_units[tenant.tenant_id] = mine
            total_home += used

        # ---- Displaced harvesters: keep or preempt ----------------------
        prev_running = [
            u
            for t in sim.tenants
            for u in t.active_units
            if u.state is UnitState.RUNNING and u.is_me_unit
        ]
        home_set = {u for units in granted_units.values() for u in units}
        displaced = [u for u in prev_running if u not in home_set]

        # A displaced harvester keeps its engine only if surplus remains
        # after every home grant; otherwise it is preempted and its engine
        # pays the reclaim penalty (unavailable this epoch either way).
        surplus0 = avail - total_home
        keep_harvesting: List[ExecUnit] = []
        for unit in sorted(displaced, key=lambda u: u.unit_id):
            if not self.harvesting or unit.kind is not UnitKind.ME_UTOP:
                continue
            if surplus0 >= unit.me_engines_needed:
                keep_harvesting.append(unit)
                surplus0 -= unit.me_engines_needed
        preempted = [u for u in displaced if u not in keep_harvesting]

        # ---- Capacity reconciliation ------------------------------------
        penalty_engines = sum(max(1, u.granted_me) for u in preempted)
        keep_engines = sum(u.me_engines_needed for u in keep_harvesting)
        capacity = avail - penalty_engines
        if total_home + keep_engines > capacity:
            # Home demand collides with engines frozen by the reclaim
            # penalty: the newly granted (READY) home units wait it out.
            total_home = self._trim(
                granted_units, grant_order, total_home,
                capacity - keep_engines,
            )
        free = capacity - total_home - keep_engines

        for units in granted_units.values():
            for unit in units:
                decision.running_me[unit] = unit.me_engines_needed

        # Reclaim owners: the tenants whose grants were trimmed (they
        # wait for the penalty); otherwise the lending vNPU.
        self._assign_reclaim_owners(decision, preempted, sim, granted_units)
        decision.preempt.extend(preempted)

        # ---- Phase B: harvesting ---------------------------------------
        harvesters = self._harvest(
            sim, decision, granted_units, free, keep_harvesting
        )

        # ---- VE allocation ---------------------------------------------
        self._allocate_ves(sim, decision, granted_units, harvesters)
        return decision

    # ------------------------------------------------------------------
    def _trim(
        self,
        granted_units: Dict[int, List[ExecUnit]],
        grant_order: List[ExecUnit],
        total: int,
        capacity: int,
    ) -> int:
        """Drop newly-granted READY units (latest first) until the grant
        set fits the post-preemption capacity.  The dropped tenants are
        the ones waiting out the reclaim penalty."""
        for unit in reversed(grant_order):
            if total <= capacity:
                break
            if unit.state is UnitState.RUNNING:
                continue  # never trim a running unit without preempting
            granted_units[unit.owner].remove(unit)
            total -= unit.me_engines_needed
            self._trimmed.append(unit.owner)
        if total > capacity:
            raise SchedulerError(
                "cannot fit running units into post-preemption capacity"
            )
        return total

    def _assign_reclaim_owners(
        self,
        decision: Decision,
        preempted: List[ExecUnit],
        sim: "Simulator",
        granted_units: Dict[int, List[ExecUnit]],
    ) -> None:
        """The frozen engine belongs to the vNPU reclaiming it: first the
        tenants whose grants were trimmed this round, then whichever
        tenant has the most unused home allocation (the lender)."""
        trimmed = list(self._trimmed)
        self._trimmed = []
        lenders = sorted(
            sim.tenants,
            key=lambda t: (
                t.alloc_mes
                - sum(u.me_engines_needed for u in granted_units[t.tenant_id])
                - sim.reclaiming_for(t.tenant_id)
            ),
            reverse=True,
        )
        for unit in preempted:
            if trimmed:
                decision.reclaim_owners[unit] = trimmed.pop(0)
            else:
                lender = next(
                    (t for t in lenders if t.tenant_id != unit.owner), None
                )
                if lender is not None:
                    decision.reclaim_owners[unit] = lender.tenant_id

    # ------------------------------------------------------------------
    def _harvest(
        self,
        sim: "Simulator",
        decision: Decision,
        granted_units: Dict[int, List[ExecUnit]],
        free: int,
        keep_harvesting: List[ExecUnit],
    ) -> List[ExecUnit]:
        """Distribute surplus engines round-robin across tenants with
        excess ready ME uTOps.  Continuing harvesters go first."""
        harvesters: List[ExecUnit] = []
        for unit in keep_harvesting:
            decision.running_me[unit] = unit.me_engines_needed
            decision.harvested_me[unit] = unit.me_engines_needed
            harvesters.append(unit)

        if not self.harvesting or free <= 0:
            return harvesters

        surplus: Dict[int, List[ExecUnit]] = {}
        for tenant in sim.tenants:
            already = set(granted_units[tenant.tenant_id]) | set(keep_harvesting)
            extras = [
                u
                for u in sort_me_candidates(self.ready_me_units(tenant))
                if u not in already and u.kind is UnitKind.ME_UTOP
            ]
            if extras:
                surplus[tenant.tenant_id] = extras

        while free > 0 and surplus:
            for tenant_id in list(surplus):
                if free <= 0:
                    break
                unit = surplus[tenant_id].pop(0)
                decision.running_me[unit] = 1
                decision.harvested_me[unit] = 1
                harvesters.append(unit)
                free -= 1
                if not surplus[tenant_id]:
                    del surplus[tenant_id]
        return harvesters

    # ------------------------------------------------------------------
    def _allocate_ves(
        self,
        sim: "Simulator",
        decision: Decision,
        granted_units: Dict[int, List[ExecUnit]],
        harvesters: List[ExecUnit],
    ) -> None:
        total_cap = float(sim.core.num_ves)
        used = 0.0
        needy: List[ExecUnit] = []
        per_tenant_granted: Dict[int, List[ExecUnit]] = {}
        for tenant in sim.tenants:
            mine = list(granted_units[tenant.tenant_id])
            mine.extend(u for u in harvesters if u.owner == tenant.tenant_id)
            per_tenant_granted[tenant.tenant_id] = mine

        for tenant in sim.tenants:
            cap = min(float(tenant.alloc_ves), total_cap - used)
            alloc = allocate_tenant_ve(
                tenant,
                per_tenant_granted[tenant.tenant_id],
                cap,
                embedded_first=self.ve_embedded_first,
            )
            for unit, amount in alloc.items():
                decision.ve_alloc[unit] = decision.ve_alloc.get(unit, 0.0) + amount
                used += amount
            needy.extend(
                unmet_ve_demand(tenant, per_tenant_granted[tenant.tenant_id],
                                decision.ve_alloc)
            )

        if not self.harvesting:
            return
        # VE harvesting: leftover capacity goes to unmet demand, embedded
        # ME streams first (they free MEs sooner), then VE uTOps.
        leftover = total_cap - used
        if leftover <= 1e-9:
            return
        needy.sort(key=lambda u: (not u.is_me_unit, u.unit_id))
        for unit in needy:
            if leftover <= 1e-9:
                break
            if unit.is_me_unit:
                want = unit.ve_rate * max(1, unit.me_engines_needed)
            else:
                want = float(unit.parallelism)
            gap = want - decision.ve_alloc.get(unit, 0.0)
            if gap <= 0:
                continue
            got = min(leftover, gap)
            decision.ve_alloc[unit] = decision.ve_alloc.get(unit, 0.0) + got
            leftover -= got
