"""Statistics collection for simulation runs.

Tracks everything the paper's evaluation section reports:

- per-engine-class busy integrals -> ME/VE utilization (Figs. 5, 22, 27);
- per-tenant assigned-engine traces over time (Fig. 24);
- per-operator execution records -> harvesting speedup breakdown
  (Fig. 23) and blocked-time overhead (Table III);
- HBM bandwidth consumption over time (Fig. 7).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class OpRecord:
    """One dynamic operator execution on one tenant."""

    tenant_id: int
    op_name: str
    op_index: int
    request_id: int
    start_cycle: float
    end_cycle: float = 0.0
    #: Cycles this operator's uTOps spent preempted or waiting for a
    #: reclaimed engine because a harvester held it (Table III metric).
    blocked_cycles: float = 0.0
    #: Engine-cycles executed on harvested (non-home) engines.
    harvested_engine_cycles: float = 0.0

    @property
    def duration(self) -> float:
        return max(0.0, self.end_cycle - self.start_cycle)


@dataclass
class AssignmentSample:
    """Engine assignment snapshot for one epoch (Fig. 24 traces)."""

    start_cycle: float
    end_cycle: float
    mes_per_tenant: Dict[int, float]
    ves_per_tenant: Dict[int, float]


class SimStats:
    """Accumulates integrals and traces during a simulation run."""

    def __init__(self, num_mes: int, num_ves: int, record_assignment: bool = True,
                 record_ops: bool = True, record_bandwidth: bool = False) -> None:
        self.num_mes = num_mes
        self.num_ves = num_ves
        self.record_assignment = record_assignment
        self.record_ops = record_ops
        self.record_bandwidth = record_bandwidth
        self.total_cycles = 0.0
        self.me_busy_integral = 0.0
        self.ve_busy_integral = 0.0
        self.me_busy_per_tenant: Dict[int, float] = defaultdict(float)
        self.ve_busy_per_tenant: Dict[int, float] = defaultdict(float)
        self.harvested_me_integral: Dict[int, float] = defaultdict(float)
        self.blocked_cycles_per_tenant: Dict[int, float] = defaultdict(float)
        self.preemption_count = 0
        self.reclaim_penalty_cycles = 0.0
        self.assignment_trace: List[AssignmentSample] = []
        self.op_records: List[OpRecord] = []
        self.bandwidth_trace: List[Tuple[float, float, float]] = []
        self._open_ops: Dict[Tuple[int, int, int], OpRecord] = {}

    # ------------------------------------------------------------------
    # Epoch accounting
    # ------------------------------------------------------------------
    def record_epoch(
        self,
        start: float,
        delta: float,
        me_busy: Dict[int, float],
        ve_busy: Dict[int, float],
        me_assigned: Optional[Dict[int, float]] = None,
        ve_assigned: Optional[Dict[int, float]] = None,
        harvested_mes_per_tenant: Optional[Dict[int, float]] = None,
        hbm_bytes_per_cycle: float = 0.0,
    ) -> None:
        """Accumulate one epoch.

        ``me_busy``/``ve_busy`` are *productive* engine counts (rate
        weighted: a memory-stalled engine counts fractionally), which is
        what the paper's utilization figures report.  ``me_assigned`` /
        ``ve_assigned`` are raw assignment counts for the Fig. 24 traces.
        """
        if delta <= 0:
            return
        self.total_cycles += delta
        for tenant, mes in me_busy.items():
            self.me_busy_integral += mes * delta
            self.me_busy_per_tenant[tenant] += mes * delta
        for tenant, ves in ve_busy.items():
            self.ve_busy_integral += ves * delta
            self.ve_busy_per_tenant[tenant] += ves * delta
        if harvested_mes_per_tenant:
            for tenant, mes in harvested_mes_per_tenant.items():
                self.harvested_me_integral[tenant] += mes * delta
        if self.record_assignment:
            self._append_assignment(
                start,
                delta,
                me_assigned if me_assigned is not None else me_busy,
                ve_assigned if ve_assigned is not None else ve_busy,
            )
        if self.record_bandwidth:
            self.bandwidth_trace.append((start, start + delta, hbm_bytes_per_cycle))

    def _append_assignment(
        self,
        start: float,
        delta: float,
        mes: Dict[int, float],
        ves: Dict[int, float],
    ) -> None:
        trace = self.assignment_trace
        if trace:
            last = trace[-1]
            if (
                last.end_cycle == start
                and last.mes_per_tenant == mes
                and last.ves_per_tenant == ves
            ):
                last.end_cycle = start + delta
                return
        trace.append(
            AssignmentSample(
                start_cycle=start,
                end_cycle=start + delta,
                mes_per_tenant=dict(mes),
                ves_per_tenant=dict(ves),
            )
        )

    # ------------------------------------------------------------------
    # Operator lifecycle
    # ------------------------------------------------------------------
    def op_started(
        self, tenant_id: int, op_name: str, op_index: int, request_id: int, now: float
    ) -> None:
        if not self.record_ops:
            return
        key = (tenant_id, request_id, op_index)
        self._open_ops[key] = OpRecord(
            tenant_id=tenant_id,
            op_name=op_name,
            op_index=op_index,
            request_id=request_id,
            start_cycle=now,
        )

    def op_finished(self, tenant_id: int, op_index: int, request_id: int, now: float) -> None:
        if not self.record_ops:
            return
        key = (tenant_id, request_id, op_index)
        record = self._open_ops.pop(key, None)
        if record is None:
            return
        record.end_cycle = now
        self.op_records.append(record)

    def op_blocked(
        self, tenant_id: int, op_index: int, request_id: int, cycles: float
    ) -> None:
        self.blocked_cycles_per_tenant[tenant_id] += cycles
        if not self.record_ops:
            return
        record = self._open_ops.get((tenant_id, request_id, op_index))
        if record is not None:
            record.blocked_cycles += cycles

    def op_harvest_cycles(
        self, tenant_id: int, op_index: int, request_id: int, engine_cycles: float
    ) -> None:
        if not self.record_ops:
            return
        record = self._open_ops.get((tenant_id, request_id, op_index))
        if record is not None:
            record.harvested_engine_cycles += engine_cycles

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------
    def me_utilization(self) -> float:
        if self.total_cycles <= 0:
            return 0.0
        return self.me_busy_integral / (self.total_cycles * self.num_mes)

    def ve_utilization(self) -> float:
        if self.total_cycles <= 0:
            return 0.0
        return self.ve_busy_integral / (self.total_cycles * self.num_ves)

    def tenant_me_utilization(self, tenant_id: int) -> float:
        if self.total_cycles <= 0:
            return 0.0
        return self.me_busy_per_tenant[tenant_id] / (self.total_cycles * self.num_mes)

    def tenant_ve_utilization(self, tenant_id: int) -> float:
        if self.total_cycles <= 0:
            return 0.0
        return self.ve_busy_per_tenant[tenant_id] / (self.total_cycles * self.num_ves)

    def op_durations(self, tenant_id: int) -> Dict[str, List[float]]:
        """Operator name -> list of execution durations for a tenant."""
        out: Dict[str, List[float]] = defaultdict(list)
        for record in self.op_records:
            if record.tenant_id == tenant_id:
                out[record.op_name].append(record.duration)
        return out

    def assignment_series(
        self, tenant_id: int
    ) -> List[Tuple[float, float, float, float]]:
        """(start, end, #MEs, #VEs) series for one tenant (Fig. 24)."""
        return [
            (
                s.start_cycle,
                s.end_cycle,
                s.mes_per_tenant.get(tenant_id, 0.0),
                s.ves_per_tenant.get(tenant_id, 0.0),
            )
            for s in self.assignment_trace
        ]

    def average_bandwidth(self) -> float:
        """Mean HBM bytes/cycle over the run (only when recorded)."""
        if not self.bandwidth_trace:
            return 0.0
        total_bytes = sum((e - s) * bw for s, e, bw in self.bandwidth_trace)
        span = self.bandwidth_trace[-1][1] - self.bandwidth_trace[0][0]
        if span <= 0:
            return 0.0
        return total_bytes / span
