"""Neu10 temporal-sharing (software-isolated) mode.

With software-isolated mapping, multiple vNPUs may *oversubscribe* the
physical core: the sum of their allocations can exceed the engine count.
The uTOp scheduler then "maintains fair sharing with the best effort
[using] a priority-based preemptive policy ... it uses a performance
counter to track the active cycles of each vNPU and balances the
execution times of vNPUs based on their relative priorities"
(paper SectionIII-E).

Implementation: every decision, tenants are ranked by consumed
ME-cycles normalised by priority; engines are granted one at a time to
the lowest-consumption tenant with ready uTOps.  A periodic quantum
forces re-evaluation so a tenant with a long uTOp backlog cannot starve
collocated vNPUs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

from repro.sim.scheduler_base import Decision, ExecUnit, SchedulerBase, UnitKind, UnitState
from repro.sim.sched_static import allocate_tenant_ve, sort_me_candidates, unmet_ve_demand

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator, Tenant

#: Default re-evaluation period (cycles) while the core is contended.
DEFAULT_QUANTUM = 20_000.0


class TemporalNeu10Scheduler(SchedulerBase):
    """Priority-weighted fair uTOp scheduling with oversubscription."""

    name = "neu10-temporal"

    def __init__(self, quantum_cycles: float = DEFAULT_QUANTUM) -> None:
        self.quantum_cycles = quantum_cycles

    def state_fingerprint(self, sim: "Simulator"):
        """Not memoisable: decisions rank tenants by accumulated ME-busy
        cycles, which drift every epoch even when no unit changes."""
        return None

    def decide(self, sim: "Simulator") -> Decision:
        decision = Decision()
        avail = sim.available_mes

        scores: Dict[int, float] = {}
        ready: Dict[int, List[ExecUnit]] = {}
        for tenant in sim.tenants:
            consumed = sim.stats.me_busy_per_tenant.get(tenant.tenant_id, 0.0)
            scores[tenant.tenant_id] = consumed / max(tenant.priority, 1e-9)
            ready[tenant.tenant_id] = [
                u
                for u in sort_me_candidates(self.ready_me_units(tenant))
                if u.kind is UnitKind.ME_UTOP
            ]

        # Round-robin grants to the least-served tenant first.
        grants: Dict[int, List[ExecUnit]] = {t.tenant_id: [] for t in sim.tenants}
        budget = avail
        while budget > 0:
            candidates = [tid for tid, units in ready.items() if units]
            if not candidates:
                break
            tid = min(candidates, key=lambda t: scores[t])
            unit = ready[tid].pop(0)
            grants[tid].append(unit)
            budget -= 1
            # Virtual accounting so one tenant does not absorb the whole
            # round when scores are equal.
            scores[tid] += 1.0

        prev_running = [
            u
            for t in sim.tenants
            for u in t.active_units
            if u.state is UnitState.RUNNING and u.is_me_unit
        ]
        granted_set = {u for units in grants.values() for u in units}
        preempted = [u for u in prev_running if u not in granted_set]
        penalty = sum(max(1, u.granted_me) for u in preempted)

        if penalty:
            # Frozen engines shrink this epoch's budget: drop the newest
            # READY grants until the set fits.
            capacity = avail - penalty
            flat = [u for units in grants.values() for u in units]
            flat.sort(key=lambda u: (u.state is UnitState.RUNNING, -u.unit_id))
            total = len(granted_set)
            for unit in flat:
                if total <= capacity:
                    break
                if unit.state is UnitState.RUNNING:
                    continue
                grants[unit.owner].remove(unit)
                total -= 1

        for units in grants.values():
            for unit in units:
                decision.running_me[unit] = 1
        decision.preempt.extend(preempted)

        # VE allocation: weighted fair per tenant, embedded streams first,
        # then leftover to anyone needy.
        self._allocate_ves(sim, decision, grants)

        contended = any(ready[tid] for tid in ready) or len(preempted) > 0
        if contended:
            decision.next_decision_at = sim.now + self.quantum_cycles
        return decision

    def _allocate_ves(
        self,
        sim: "Simulator",
        decision: Decision,
        grants: Dict[int, List[ExecUnit]],
    ) -> None:
        total_cap = float(sim.core.num_ves)
        weights = sum(t.priority for t in sim.tenants) or 1.0
        used = 0.0
        needy: List[ExecUnit] = []
        for tenant in sim.tenants:
            share = total_cap * tenant.priority / weights
            share = min(share, total_cap - used)
            alloc = allocate_tenant_ve(tenant, grants[tenant.tenant_id], share)
            for unit, amount in alloc.items():
                decision.ve_alloc[unit] = decision.ve_alloc.get(unit, 0.0) + amount
                used += amount
            needy.extend(
                unmet_ve_demand(tenant, grants[tenant.tenant_id], decision.ve_alloc)
            )
        leftover = total_cap - used
        needy.sort(key=lambda u: (not u.is_me_unit, u.unit_id))
        for unit in needy:
            if leftover <= 1e-9:
                break
            want = (
                unit.ve_rate * max(1, unit.me_engines_needed)
                if unit.is_me_unit
                else float(unit.parallelism)
            )
            gap = want - decision.ve_alloc.get(unit, 0.0)
            if gap <= 0:
                continue
            got = min(leftover, gap)
            decision.ve_alloc[unit] = decision.ve_alloc.get(unit, 0.0) + got
            leftover -= got
