"""Recommendation workloads: DLRM and NCF (paper Table I).

Both are the paper's canonical VE/HBM-intensive models: Fig. 4 places
their ME:VE intensity ratio around 0.01-0.1, and Fig. 7 shows DLRM
consuming ~500 GB/s average HBM bandwidth (embedding gathers).  The ME
work is confined to small MLPs whose ``m`` dimension is the batch size,
which cannot fill a 128x128 systolic array.
"""

from __future__ import annotations

from repro.compiler.graph import Graph
from repro.compiler.operators import (
    Elementwise,
    ElementwiseKind,
    MatMul,
    Reduction,
    Softmax,
)
from repro.config import GiB
from repro.workloads.spec import embedding_bag, linear, mlp_stack

# DLRM: 26 sparse features, multi-hot with ~512 indices pooled per bag
# (sized so a batch-8 request takes ~100 us like the paper's Fig. 2 trace
# and the intensity ratio lands in Fig. 4's 0.01-0.1 band).
DLRM_NUM_TABLES = 26
DLRM_INDICES_PER_BAG = 512
DLRM_EMB_DIM = 128
DLRM_TABLE_BYTES = 22 * GiB // DLRM_NUM_TABLES
DLRM_DENSE_FEATURES = 13


def build_dlrm(batch: int) -> Graph:
    graph = Graph(f"dlrm-b{batch}")
    # Bottom MLP over dense features.
    mlp_stack(graph, "bot", batch, [DLRM_DENSE_FEATURES, 256, 128, DLRM_EMB_DIM])
    # Sparse embedding bags: the HBM-heavy phase.
    for table in range(DLRM_NUM_TABLES):
        embedding_bag(
            graph,
            f"emb{table}",
            lookups=batch * DLRM_INDICES_PER_BAG,
            dim=DLRM_EMB_DIM,
            table_bytes=DLRM_TABLE_BYTES,
        )
    # Feature interaction: pairwise dots between the 27 feature vectors.
    features = DLRM_NUM_TABLES + 1
    graph.add(
        MatMul(
            "interact",
            m=batch * features,
            k=DLRM_EMB_DIM,
            n=features,
            weights_streamed=False,
        )
    )
    graph.add(
        Elementwise(
            "interact.concat",
            kind=ElementwiseKind.COPY,
            elements=batch * (features * features // 2 + DLRM_EMB_DIM),
        )
    )
    # Top MLP + final sigmoid.
    interact_width = features * features // 2 + DLRM_EMB_DIM
    mlp_stack(graph, "top", batch, [interact_width, 256, 64, 1])
    graph.add(Elementwise("sigmoid", kind=ElementwiseKind.SIGMOID, elements=batch))
    return graph


# NCF: neural collaborative filtering scoring `CANDIDATES` items per
# user, with the user's interaction history (multi-hot) pooled into the
# user representation -- the embedding-gather-dominated phase.
NCF_CANDIDATES = 512
NCF_HISTORY = 4096
NCF_EMB_DIM = 256
NCF_TABLE_BYTES = 5 * GiB


def build_ncf(batch: int) -> Graph:
    graph = Graph(f"ncf-b{batch}")
    rows = batch * NCF_CANDIDATES
    # GMF and MLP towers: pooled user-history embedding + per-candidate
    # item embeddings.
    for tower in ("gmf", "mlp"):
        embedding_bag(
            graph,
            f"{tower}.user_emb",
            lookups=batch * NCF_HISTORY,
            dim=NCF_EMB_DIM,
            table_bytes=NCF_TABLE_BYTES,
        )
        embedding_bag(
            graph,
            f"{tower}.item_emb",
            lookups=batch * NCF_CANDIDATES,
            dim=NCF_EMB_DIM,
            table_bytes=NCF_TABLE_BYTES,
        )
    # GMF: elementwise product of user/item vectors.
    graph.add(
        Elementwise(
            "gmf.mul", kind=ElementwiseKind.MUL,
            elements=rows * NCF_EMB_DIM, arity=2,
        )
    )
    # MLP tower over concatenated embeddings.
    mlp_stack(graph, "mlp", rows, [2 * NCF_EMB_DIM, 64, 32, 16])
    # Fuse GMF + MLP and score.
    graph.add(
        Elementwise(
            "fuse.concat", kind=ElementwiseKind.COPY,
            elements=rows * (NCF_EMB_DIM + 16),
        )
    )
    linear(graph, "predict", rows, NCF_EMB_DIM + 16, 1)
    graph.add(Elementwise("sigmoid", kind=ElementwiseKind.SIGMOID, elements=rows))
    # Rank the candidates per user.
    graph.add(Reduction("rank.topk", elements=rows, outputs=batch * 10))
    graph.add(Softmax("rank.norm", rows=batch, cols=NCF_CANDIDATES))
    return graph
