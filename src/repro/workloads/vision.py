"""Vision workloads (paper Table I).

Image classification: MNIST, ResNet, ResNet-RS, EfficientNet.
Detection & segmentation: RetinaNet, ShapeMask, Mask-RCNN.

Calibration targets (paper Fig. 4, batch 32): ResNet-family models are
strongly ME-dominated (conv-heavy, intensity ratio 10-100); EfficientNet
is nearly balanced (depthwise convs and squeeze-excite run on the VEs);
detection models are ME-leaning but carry meaningful VE post-processing
(anchor decode, NMS, ROI align, mask resampling).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.compiler.graph import Graph
from repro.compiler.operators import (
    Conv2D,
    Elementwise,
    ElementwiseKind,
    Pooling,
    Reduction,
    Softmax,
)
from repro.workloads.spec import (
    RELU,
    SWISH,
    conv_block,
    dwconv_block,
    global_pool,
    linear,
    mlp_stack,
    residual_add,
)


# ----------------------------------------------------------------------
# MNIST: a tiny LeNet-style CNN.
# ----------------------------------------------------------------------
def build_mnist(batch: int) -> Graph:
    graph = Graph(f"mnist-b{batch}")
    hw = conv_block(graph, "conv1", batch, 28, 1, 32, kernel=5)
    graph.add(Pooling("pool1", batch=batch, in_h=hw, in_w=hw, channels=32, window=2))
    hw //= 2
    hw = conv_block(graph, "conv2", batch, hw, 32, 64, kernel=5)
    graph.add(Pooling("pool2", batch=batch, in_h=hw, in_w=hw, channels=64, window=2))
    hw //= 2
    mlp_stack(graph, "fc", batch, [hw * hw * 64, 256, 10])
    graph.add(Softmax("softmax", rows=batch, cols=10))
    return graph


# ----------------------------------------------------------------------
# ResNet family.
# ----------------------------------------------------------------------
def _bottleneck(
    graph: Graph, name: str, batch: int, hw: int, in_ch: int, mid_ch: int,
    stride: int = 1,
) -> Tuple[int, int]:
    """ResNet bottleneck: 1x1 reduce, 3x3, 1x1 expand with the residual
    add + ReLU *fused* into the expand conv's epilogue (the standard
    compiler optimisation -- the skip tensor never round-trips HBM)."""
    out_ch = mid_ch * 4
    conv_block(graph, f"{name}.reduce", batch, hw, in_ch, mid_ch, kernel=1)
    hw = conv_block(graph, f"{name}.conv3x3", batch, hw, mid_ch, mid_ch,
                    kernel=3, stride=stride)
    graph.add(
        Conv2D(
            f"{name}.expand",
            batch=batch,
            in_h=hw,
            in_w=hw,
            in_ch=mid_ch,
            out_ch=out_ch,
            kernel=1,
            epilogue=[ElementwiseKind.ADD, ElementwiseKind.RELU],
        )
    )
    return hw, out_ch


def _resnet(graph: Graph, batch: int, stage_blocks: List[int],
            input_hw: int = 224) -> Tuple[int, int]:
    hw = conv_block(graph, "stem", batch, input_hw, 3, 64, kernel=7, stride=2)
    graph.add(Pooling("stem.pool", batch=batch, in_h=hw, in_w=hw,
                      channels=64, window=2))
    hw //= 2
    ch = 64
    for stage, blocks in enumerate(stage_blocks):
        mid = 64 * (2 ** stage)
        for block in range(blocks):
            stride = 2 if (block == 0 and stage > 0) else 1
            hw, ch = _bottleneck(
                graph, f"s{stage}.b{block}", batch, hw, ch, mid, stride
            )
    return hw, ch


def build_resnet(batch: int) -> Graph:
    """ResNet-50."""
    graph = Graph(f"resnet-b{batch}")
    hw, ch = _resnet(graph, batch, [3, 4, 6, 3])
    global_pool(graph, "avgpool", batch, hw, ch)
    linear(graph, "fc", batch, ch, 1000)
    graph.add(Softmax("softmax", rows=batch, cols=1000))
    return graph


def build_resnet_rs(batch: int) -> Graph:
    """ResNet-RS-101: deeper, with a squeeze-excite block per stage."""
    graph = Graph(f"resnet-rs-b{batch}")
    hw, ch = _resnet(graph, batch, [3, 4, 23, 3])
    # Squeeze-excite tail (ResNet-RS adds SE; modelled once per stage
    # would bloat op counts, one global SE captures the VE flavour).
    global_pool(graph, "se.pool", batch, hw, ch)
    linear(graph, "se.fc1", batch, ch, ch // 4, activation=RELU)
    linear(graph, "se.fc2", batch, ch // 4, ch, activation=ElementwiseKind.SIGMOID)
    graph.add(
        Elementwise("se.scale", kind=ElementwiseKind.MUL,
                    elements=batch * hw * hw * ch, arity=2)
    )
    global_pool(graph, "avgpool", batch, hw, ch)
    linear(graph, "fc", batch, ch, 1000)
    graph.add(Softmax("softmax", rows=batch, cols=1000))
    return graph


# ----------------------------------------------------------------------
# EfficientNet (B4-style): MBConv blocks with depthwise convs + SE.
# ----------------------------------------------------------------------
_ENET_STAGES = [
    # (blocks, in_ch, out_ch, expand, kernel, stride)
    (2, 48, 24, 1, 3, 1),
    (4, 24, 32, 6, 3, 2),
    (4, 32, 56, 6, 5, 2),
    (6, 56, 112, 6, 3, 2),
    (6, 112, 160, 6, 5, 1),
    (8, 160, 272, 6, 5, 2),
    (2, 272, 448, 6, 3, 1),
]


def _mbconv(graph: Graph, name: str, batch: int, hw: int, in_ch: int,
            out_ch: int, expand: int, kernel: int, stride: int) -> int:
    mid = in_ch * expand
    if expand != 1:
        conv_block(graph, f"{name}.expand", batch, hw, in_ch, mid,
                   kernel=1, activation=SWISH)
    hw = dwconv_block(graph, f"{name}.dw", batch, hw, mid, kernel=kernel,
                      stride=stride)
    # Squeeze-excite: global pool + two tiny FCs + channel scale.
    global_pool(graph, f"{name}.se.pool", batch, hw, mid)
    linear(graph, f"{name}.se.fc1", batch, mid, max(8, in_ch // 4),
           activation=SWISH)
    linear(graph, f"{name}.se.fc2", batch, max(8, in_ch // 4), mid,
           activation=ElementwiseKind.SIGMOID)
    graph.add(
        Elementwise(f"{name}.se.scale", kind=ElementwiseKind.MUL,
                    elements=batch * hw * hw * mid, arity=2)
    )
    conv_block(graph, f"{name}.project", batch, hw, mid, out_ch,
               kernel=1, activation=None)
    if stride == 1 and in_ch == out_ch:
        residual_add(graph, f"{name}.residual", batch, hw, out_ch)
    return hw


def build_efficientnet(batch: int) -> Graph:
    graph = Graph(f"efficientnet-b{batch}")
    hw = conv_block(graph, "stem", batch, 192, 3, 48, kernel=3, stride=2,
                    activation=SWISH)
    for stage, (blocks, in_ch, out_ch, expand, kernel, stride) in enumerate(
        _ENET_STAGES
    ):
        ch = in_ch
        for block in range(blocks):
            s = stride if block == 0 else 1
            hw = _mbconv(graph, f"s{stage}.b{block}", batch, hw, ch,
                         out_ch, expand, kernel, s)
            ch = out_ch
    conv_block(graph, "head", batch, hw, 448, 1792, kernel=1, activation=SWISH)
    global_pool(graph, "avgpool", batch, hw, 1792)
    linear(graph, "fc", batch, 1792, 1000)
    graph.add(Softmax("softmax", rows=batch, cols=1000))
    return graph


# ----------------------------------------------------------------------
# Detection & segmentation.
# ----------------------------------------------------------------------
def _fpn(graph: Graph, batch: int, levels: List[Tuple[int, int]]) -> None:
    """Feature pyramid: lateral 1x1 convs + top-down merge adds +
    smoothing 3x3 convs at each level."""
    for i, (hw, ch) in enumerate(levels):
        conv_block(graph, f"fpn.lateral{i}", batch, hw, ch, 256, kernel=1)
        if i > 0:
            residual_add(graph, f"fpn.merge{i}", batch, hw, 256)
        conv_block(graph, f"fpn.out{i}", batch, hw, 256, 256, kernel=3)


def _detection_backbone(graph: Graph, batch: int, input_hw: int) -> List[Tuple[int, int]]:
    hw, _ch = _resnet(graph, batch, [3, 4, 6, 3], input_hw=input_hw)
    # ResNet C3..C5 output sizes for the FPN.
    return [
        (input_hw // 8, 512),
        (input_hw // 16, 1024),
        (input_hw // 32, 2048),
    ]


def _retina_head(graph: Graph, batch: int, levels: List[Tuple[int, int]],
                 anchors: int = 9, classes: int = 90) -> None:
    for i, (hw, _ch) in enumerate(levels):
        for conv in range(4):
            conv_block(graph, f"head.l{i}.cls{conv}", batch, hw, 256, 256)
        conv_block(graph, f"head.l{i}.cls_out", batch, hw, 256,
                   anchors * classes, activation=None)
        for conv in range(4):
            conv_block(graph, f"head.l{i}.box{conv}", batch, hw, 256, 256)
        conv_block(graph, f"head.l{i}.box_out", batch, hw, 256, anchors * 4,
                   activation=None)
        # Score thresholding keeps the top ~1k candidates per level;
        # only those go through sigmoid + box decode on the VEs.
        graph.add(
            Reduction(
                f"head.l{i}.filter",
                elements=batch * hw * hw * anchors,
                outputs=batch * 1000,
            )
        )
        graph.add(
            Elementwise(
                f"head.l{i}.decode", kind=ElementwiseKind.SIGMOID,
                elements=batch * 1000 * (4 + classes),
            )
        )
    # Top-k + NMS: sorting-like reduction work on the VEs.
    graph.add(Reduction("nms.topk", elements=batch * 100_000, outputs=batch * 1000))
    graph.add(Reduction("nms.suppress", elements=batch * 200_000,
                        outputs=batch * 100))


def build_retinanet(batch: int) -> Graph:
    graph = Graph(f"retinanet-b{batch}")
    levels = _detection_backbone(graph, batch, input_hw=448)
    _fpn(graph, batch, levels)
    _retina_head(graph, batch, [(hw, 256) for hw, _c in levels])
    return graph


def build_shapemask(batch: int) -> Graph:
    """ShapeMask: RetinaNet-style detector + shape-prior mask branch."""
    graph = Graph(f"shapemask-b{batch}")
    levels = _detection_backbone(graph, batch, input_hw=448)
    _fpn(graph, batch, levels)
    _retina_head(graph, batch, [(hw, 256) for hw, _c in levels])
    # Mask branch: per-RoI convs on pooled features + shape refinement.
    rois = 32
    for conv in range(4):
        conv_block(graph, f"mask.conv{conv}", batch * rois, 16, 256, 256)
    conv_block(graph, "mask.out", batch * rois, 16, 256, 1, activation=None)
    graph.add(
        Elementwise("mask.refine", kind=ElementwiseKind.SIGMOID,
                    elements=batch * rois * 32 * 32)
    )
    return graph


def build_mask_rcnn(batch: int) -> Graph:
    """Mask-RCNN: two-stage detector with RoI heads and mask branch."""
    graph = Graph(f"mask-rcnn-b{batch}")
    levels = _detection_backbone(graph, batch, input_hw=512)
    _fpn(graph, batch, levels)
    # RPN at each level.
    for i, (hw, _ch) in enumerate(levels):
        conv_block(graph, f"rpn.l{i}.conv", batch, hw, 256, 256)
        conv_block(graph, f"rpn.l{i}.obj", batch, hw, 256, 3, activation=None)
        conv_block(graph, f"rpn.l{i}.box", batch, hw, 256, 12, activation=None)
    graph.add(Reduction("rpn.topk", elements=batch * 200_000,
                        outputs=batch * 1000))
    # RoI align: gather + bilinear resampling on VEs.
    rois = 128
    graph.add(
        Elementwise("roi.align", kind=ElementwiseKind.COPY,
                    elements=batch * rois * 7 * 7 * 256 * 4)
    )
    # Box head: two FC layers over RoI features.
    mlp_stack(graph, "box_head", batch * rois, [7 * 7 * 256, 1024, 1024])
    linear(graph, "box_head.cls", batch * rois, 1024, 91)
    linear(graph, "box_head.reg", batch * rois, 1024, 364)
    graph.add(Softmax("box_head.softmax", rows=batch * rois, cols=91))
    graph.add(Reduction("detection.nms", elements=batch * 100_000,
                        outputs=batch * 100))
    # Mask head: 4 convs + deconv + per-class masks on kept RoIs.
    kept = 32
    for conv in range(4):
        conv_block(graph, f"mask.conv{conv}", batch * kept, 14, 256, 256)
    conv_block(graph, "mask.deconv", batch * kept, 28, 256, 256)
    conv_block(graph, "mask.out", batch * kept, 28, 256, 91, kernel=1,
               activation=None)
    graph.add(
        Elementwise("mask.sigmoid", kind=ElementwiseKind.SIGMOID,
                    elements=batch * kept * 28 * 28 * 91)
    )
    return graph
