"""Layer-spec helpers shared by all model definitions.

Models are defined by composing these block builders onto a
:class:`~repro.compiler.graph.Graph`.  Conventions:

- Batch-norm is folded into the preceding convolution (standard
  inference-time optimisation), so conv blocks carry their activation as
  a fused epilogue directly.
- Attention is expressed through its matmul-equivalent shapes, with the
  softmax as an explicit VE operator.
- Residual adds and normalisations appear as explicit VE operators --
  they are what makes "ME-intensive" models still spend >0 time on VEs
  (paper Fig. 5).
"""

from __future__ import annotations

from typing import List, Optional

from repro.compiler.graph import Graph
from repro.compiler.operators import (
    Conv2D,
    DepthwiseConv2D,
    Elementwise,
    ElementwiseKind,
    EmbeddingLookup,
    LayerNorm,
    MatMul,
    Pooling,
    Softmax,
)

RELU = ElementwiseKind.RELU
GELU = ElementwiseKind.GELU
SWISH = ElementwiseKind.SWISH


def conv_block(
    graph: Graph,
    name: str,
    batch: int,
    hw: int,
    in_ch: int,
    out_ch: int,
    kernel: int = 3,
    stride: int = 1,
    activation: Optional[ElementwiseKind] = RELU,
) -> int:
    """Conv (+ folded BN) with fused activation; returns out spatial."""
    epilogue: List[ElementwiseKind] = [activation] if activation else []
    graph.add(
        Conv2D(
            name,
            batch=batch,
            in_h=hw,
            in_w=hw,
            in_ch=in_ch,
            out_ch=out_ch,
            kernel=kernel,
            stride=stride,
            epilogue=epilogue,
        )
    )
    return max(1, hw // stride)


def residual_add(graph: Graph, name: str, batch: int, hw: int, ch: int) -> None:
    graph.add(
        Elementwise(
            name, kind=ElementwiseKind.ADD, elements=batch * hw * hw * ch, arity=2
        )
    )


def dwconv_block(
    graph: Graph,
    name: str,
    batch: int,
    hw: int,
    ch: int,
    kernel: int = 3,
    stride: int = 1,
) -> int:
    graph.add(
        DepthwiseConv2D(
            name,
            batch=batch,
            in_h=hw,
            in_w=hw,
            channels=ch,
            kernel=kernel,
            stride=stride,
        )
    )
    return max(1, hw // stride)


def linear(
    graph: Graph,
    name: str,
    rows: int,
    in_features: int,
    out_features: int,
    activation: Optional[ElementwiseKind] = None,
    weights_streamed: bool = True,
) -> None:
    epilogue: List[ElementwiseKind] = [activation] if activation else []
    graph.add(
        MatMul(
            name,
            m=rows,
            k=in_features,
            n=out_features,
            epilogue=epilogue,
            weights_streamed=weights_streamed,
        )
    )


def layer_norm(graph: Graph, name: str, rows: int, cols: int) -> None:
    graph.add(LayerNorm(name, rows=rows, cols=cols))


def attention_block(
    graph: Graph,
    name: str,
    batch: int,
    seq: int,
    hidden: int,
    heads: int,
) -> None:
    """Multi-head self-attention: QKV projection, scores+softmax,
    context matmul, output projection, residual add, layer norm."""
    rows = batch * seq
    head_dim = hidden // heads
    linear(graph, f"{name}.qkv", rows, hidden, 3 * hidden)
    # scores: per head (seq x head_dim) @ (head_dim x seq)
    graph.add(
        MatMul(
            f"{name}.scores",
            m=batch * heads * seq,
            k=head_dim,
            n=seq,
            weights_streamed=False,
        )
    )
    graph.add(Softmax(f"{name}.softmax", rows=batch * heads * seq, cols=seq))
    graph.add(
        MatMul(
            f"{name}.context",
            m=batch * heads * seq,
            k=seq,
            n=head_dim,
            weights_streamed=False,
        )
    )
    linear(graph, f"{name}.proj", rows, hidden, hidden)
    residual_add_rows(graph, f"{name}.residual", rows, hidden)
    layer_norm(graph, f"{name}.ln", rows, hidden)


def residual_add_rows(graph: Graph, name: str, rows: int, cols: int) -> None:
    graph.add(
        Elementwise(name, kind=ElementwiseKind.ADD, elements=rows * cols, arity=2)
    )


def ffn_block(
    graph: Graph,
    name: str,
    rows: int,
    hidden: int,
    inner: int,
    activation: ElementwiseKind = GELU,
) -> None:
    linear(graph, f"{name}.fc1", rows, hidden, inner, activation=activation)
    linear(graph, f"{name}.fc2", rows, inner, hidden)
    residual_add_rows(graph, f"{name}.residual", rows, hidden)
    layer_norm(graph, f"{name}.ln", rows, hidden)


def transformer_layer(
    graph: Graph,
    name: str,
    batch: int,
    seq: int,
    hidden: int,
    heads: int,
    ffn_inner: int,
    activation: ElementwiseKind = GELU,
) -> None:
    attention_block(graph, f"{name}.attn", batch, seq, hidden, heads)
    ffn_block(graph, f"{name}.ffn", batch * seq, hidden, ffn_inner, activation)


def embedding_bag(
    graph: Graph,
    name: str,
    lookups: int,
    dim: int,
    table_bytes: int,
) -> None:
    graph.add(
        EmbeddingLookup(
            name, num_lookups=lookups, dim=dim, table_bytes=table_bytes
        )
    )


def mlp_stack(
    graph: Graph,
    name: str,
    rows: int,
    layer_sizes: List[int],
    activation: ElementwiseKind = RELU,
) -> None:
    """Sequential dense layers: layer_sizes = [in, h1, h2, ..., out]."""
    for i in range(len(layer_sizes) - 1):
        last = i == len(layer_sizes) - 2
        linear(
            graph,
            f"{name}.fc{i}",
            rows,
            layer_sizes[i],
            layer_sizes[i + 1],
            activation=None if last else activation,
        )


def global_pool(graph: Graph, name: str, batch: int, hw: int, ch: int) -> None:
    graph.add(
        Pooling(name, batch=batch, in_h=hw, in_w=hw, channels=ch, window=hw)
    )
