"""NLP workloads: BERT and Transformer (paper Table I).

- **BERT** -- BERT-Large style encoder (24 layers, hidden 1024, 16
  heads, sequence 128).  ME-dominated with periodic VE phases (softmax,
  layer norm) -- paper Fig. 2 shows its ME/VE demand alternation, and
  Fig. 4 a moderate-to-high ME:VE intensity ratio that grows with batch.
- **Transformer** (TFMR) -- an encoder-decoder translation model with an
  autoregressive decode loop.  Decode steps run matmuls with tiny
  ``m = batch`` rows, so the model is spikier and less ME-efficient than
  BERT (its 15 ms trace in Fig. 2 alternates rapidly).
"""

from __future__ import annotations

from repro.compiler.graph import Graph
from repro.compiler.operators import Elementwise, ElementwiseKind, Softmax
from repro.workloads.spec import (
    GELU,
    layer_norm,
    linear,
    transformer_layer,
)

BERT_LAYERS = 24
BERT_HIDDEN = 1024
BERT_HEADS = 16
BERT_SEQ = 128
BERT_FFN = 4096


def build_bert(batch: int) -> Graph:
    """BERT-Large encoder for one inference batch."""
    graph = Graph(f"bert-b{batch}")
    rows = batch * BERT_SEQ
    # Embedding lookup + positional add + input layer norm.
    linear(graph, "embed.project", rows, BERT_HIDDEN, BERT_HIDDEN)
    graph.add(
        Elementwise(
            "embed.pos_add", kind=ElementwiseKind.ADD,
            elements=rows * BERT_HIDDEN, arity=2,
        )
    )
    layer_norm(graph, "embed.ln", rows, BERT_HIDDEN)
    for layer in range(BERT_LAYERS):
        transformer_layer(
            graph,
            f"layer{layer}",
            batch,
            BERT_SEQ,
            BERT_HIDDEN,
            BERT_HEADS,
            BERT_FFN,
            activation=GELU,
        )
    # Pooler head.
    linear(graph, "pooler", batch, BERT_HIDDEN, BERT_HIDDEN, activation=ElementwiseKind.TANH)
    return graph


TFMR_ENC_LAYERS = 6
TFMR_DEC_LAYERS = 6
TFMR_HIDDEN = 1024
TFMR_HEADS = 16
TFMR_FFN = 4096
TFMR_SRC_SEQ = 64
TFMR_DECODE_STEPS = 12
TFMR_VOCAB = 32_000


def build_transformer(batch: int) -> Graph:
    """Encoder-decoder Transformer with autoregressive decoding."""
    graph = Graph(f"transformer-b{batch}")
    enc_rows = batch * TFMR_SRC_SEQ
    linear(graph, "enc.embed", enc_rows, TFMR_HIDDEN, TFMR_HIDDEN)
    for layer in range(TFMR_ENC_LAYERS):
        transformer_layer(
            graph,
            f"enc{layer}",
            batch,
            TFMR_SRC_SEQ,
            TFMR_HIDDEN,
            TFMR_HEADS,
            TFMR_FFN,
        )
    # Autoregressive decode: each step projects a single token per
    # sequence (m = batch) through every decoder layer -- ME-inefficient
    # matmuls interleaved with VE softmaxes over the vocabulary.
    for step in range(TFMR_DECODE_STEPS):
        ctx = TFMR_SRC_SEQ + step
        for layer in range(TFMR_DEC_LAYERS):
            name = f"dec.s{step}.l{layer}"
            linear(graph, f"{name}.qkv", batch, TFMR_HIDDEN, 3 * TFMR_HIDDEN)
            graph.add(
                Softmax(f"{name}.attn_softmax", rows=batch * TFMR_HEADS, cols=ctx)
            )
            linear(graph, f"{name}.proj", batch, TFMR_HIDDEN, TFMR_HIDDEN)
            linear(
                graph, f"{name}.ffn1", batch, TFMR_HIDDEN, TFMR_FFN, activation=GELU
            )
            linear(graph, f"{name}.ffn2", batch, TFMR_FFN, TFMR_HIDDEN)
            layer_norm(graph, f"{name}.ln", batch, TFMR_HIDDEN)
        linear(graph, f"dec.s{step}.vocab", batch, TFMR_HIDDEN, TFMR_VOCAB)
        graph.add(Softmax(f"dec.s{step}.vocab_softmax", rows=batch, cols=TFMR_VOCAB))
    return graph
