"""Model registry with paper Table I metadata.

``CATALOG`` maps both full names and the paper's abbreviations to
:class:`ModelInfo` entries carrying the builder function, the workload
category and the HBM footprint the paper reports for batch size 8.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.compiler.graph import Graph
from repro.config import GiB, MiB
from repro.errors import ConfigError
from repro.workloads.llm import build_llama
from repro.workloads.nlp import build_bert, build_transformer
from repro.workloads.recsys import build_dlrm, build_ncf
from repro.workloads.vision import (
    build_efficientnet,
    build_mask_rcnn,
    build_mnist,
    build_resnet,
    build_resnet_rs,
    build_retinanet,
    build_shapemask,
)


@dataclass(frozen=True)
class ModelInfo:
    """Catalog entry for one DNN model."""

    name: str
    abbrev: str
    category: str
    builder: Callable[[int], Graph]
    #: HBM footprint at batch size 8 as reported in paper Table I.
    hbm_footprint_bytes: int

    def build(self, batch: int) -> Graph:
        if batch < 1:
            raise ConfigError("batch size must be positive")
        return self.builder(batch)


_ENTRIES = [
    ModelInfo("BERT", "BERT", "nlp", build_bert, int(1.27 * GiB)),
    ModelInfo("Transformer", "TFMR", "nlp", build_transformer, int(1.54 * GiB)),
    ModelInfo("DLRM", "DLRM", "recommendation", build_dlrm, int(22.38 * GiB)),
    ModelInfo("NCF", "NCF", "recommendation", build_ncf, int(11.10 * GiB)),
    ModelInfo("Mask-RCNN", "MRCNN", "detection", build_mask_rcnn, int(3.21 * GiB)),
    ModelInfo("RetinaNet", "RtNt", "detection", build_retinanet, int(860.51 * MiB)),
    ModelInfo("ShapeMask", "SMask", "detection", build_shapemask, int(6.04 * GiB)),
    ModelInfo("MNIST", "MNIST", "classification", build_mnist, int(10.59 * MiB)),
    ModelInfo("ResNet", "RsNt", "classification", build_resnet, int(216.02 * MiB)),
    ModelInfo("ResNet-RS", "RNRS", "classification", build_resnet_rs, int(458.17 * MiB)),
    ModelInfo("EfficientNet", "ENet", "classification", build_efficientnet, int(99.06 * MiB)),
    ModelInfo("LLaMA", "LLaMA", "llm", build_llama, int(26.0 * GiB)),
]

CATALOG: Dict[str, ModelInfo] = {}
for _info in _ENTRIES:
    CATALOG[_info.name] = _info
    CATALOG[_info.abbrev] = _info
    CATALOG[_info.name.lower()] = _info
    CATALOG[_info.abbrev.lower()] = _info


def model_names(include_llm: bool = False) -> List[str]:
    """Canonical model names in Table I order."""
    names = [info.name for info in _ENTRIES if info.category != "llm"]
    if include_llm:
        names.append("LLaMA")
    return names


def catalog_entries() -> List[ModelInfo]:
    """Table I entries in catalog order (one per model, no aliases)."""
    return list(_ENTRIES)


def model_info(name: str) -> ModelInfo:
    if name in CATALOG:
        return CATALOG[name]
    # Third-party models plug in through the workload registry; anything
    # registered there serves through build_trace like a builtin.
    from repro.api.registries import WORKLOADS

    if name in WORKLOADS:
        info = WORKLOADS.get(name)
        if isinstance(info, ModelInfo):
            return info
        raise ConfigError(
            f"workload registry entry {name!r} is not a ModelInfo "
            f"(got {type(info).__name__}); register a "
            "repro.workloads.catalog.ModelInfo so build_trace can use it"
        )
    raise ConfigError(
        f"unknown model {name!r}; known: "
        f"{sorted(set(i.name for i in _ENTRIES) | set(WORKLOADS.names()))}"
    )


def build_model(name: str, batch: int) -> Graph:
    return model_info(name).build(batch)
