"""LLaMA2-13B decode-phase workload (paper Fig. 27 case study).

The paper collocates "a memory bandwidth-intensive LLM inference
workload, LLaMA2-13B (batch size 8, input sequence length 512)" with
compute-intensive models.  Decode-phase token generation multiplies a
``batch``-row activation against every weight matrix of every layer --
a GEMV-shaped workload whose systolic-array time is dominated by weight
loading, making it HBM-bandwidth bound when several MEs stream weights
concurrently.  That is exactly the behaviour Fig. 27 exploits: under V10
the memory-stalled LLM holds all MEs hostage; under Neu10 the collocated
compute-intensive workload harvests them.
"""

from __future__ import annotations

from repro.compiler.graph import Graph
from repro.compiler.operators import Elementwise, ElementwiseKind, Softmax
from repro.workloads.spec import layer_norm, linear

LLAMA_LAYERS = 40
LLAMA_HIDDEN = 5120
LLAMA_HEADS = 40
LLAMA_FFN = 13_824
LLAMA_CONTEXT = 512
LLAMA_VOCAB = 32_000
#: Decode steps simulated per inference request.
LLAMA_DECODE_STEPS = 4


def build_llama(batch: int) -> Graph:
    """LLaMA2-13B decode steps for one serving request."""
    graph = Graph(f"llama13b-b{batch}")
    for step in range(LLAMA_DECODE_STEPS):
        ctx = LLAMA_CONTEXT + step
        for layer in range(LLAMA_LAYERS):
            name = f"s{step}.l{layer}"
            layer_norm(graph, f"{name}.ln1", batch, LLAMA_HIDDEN)
            linear(graph, f"{name}.qkv", batch, LLAMA_HIDDEN, 3 * LLAMA_HIDDEN)
            graph.add(
                Softmax(f"{name}.attn", rows=batch * LLAMA_HEADS, cols=ctx)
            )
            linear(graph, f"{name}.proj", batch, LLAMA_HIDDEN, LLAMA_HIDDEN)
            layer_norm(graph, f"{name}.ln2", batch, LLAMA_HIDDEN)
            # SwiGLU FFN: gate+up fused, then down projection.
            linear(
                graph, f"{name}.ffn_gate_up", batch, LLAMA_HIDDEN, 2 * LLAMA_FFN,
                activation=ElementwiseKind.SWISH,
            )
            linear(graph, f"{name}.ffn_down", batch, LLAMA_FFN, LLAMA_HIDDEN)
        linear(graph, f"s{step}.lm_head", batch, LLAMA_HIDDEN, LLAMA_VOCAB)
        graph.add(Softmax(f"s{step}.sample", rows=batch, cols=LLAMA_VOCAB))
    return graph
