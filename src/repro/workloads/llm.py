"""LLaMA2-13B decode-phase workload (paper Fig. 27 case study).

The paper collocates "a memory bandwidth-intensive LLM inference
workload, LLaMA2-13B (batch size 8, input sequence length 512)" with
compute-intensive models.  Decode-phase token generation multiplies a
``batch``-row activation against every weight matrix of every layer --
a GEMV-shaped workload whose systolic-array time is dominated by weight
loading, making it HBM-bandwidth bound when several MEs stream weights
concurrently.  That is exactly the behaviour Fig. 27 exploits: under V10
the memory-stalled LLM holds all MEs hostage; under Neu10 the collocated
compute-intensive workload harvests them.
"""

from __future__ import annotations

from repro.compiler.graph import Graph
from repro.compiler.operators import Elementwise, ElementwiseKind, Softmax
from repro.errors import ConfigError
from repro.workloads.spec import layer_norm, linear

LLAMA_LAYERS = 40
LLAMA_HIDDEN = 5120
LLAMA_HEADS = 40
LLAMA_FFN = 13_824
LLAMA_CONTEXT = 512
LLAMA_VOCAB = 32_000
#: Decode steps simulated per inference request.
LLAMA_DECODE_STEPS = 4


def build_llama(
    batch: int,
    context: int = LLAMA_CONTEXT,
    decode_steps: int = LLAMA_DECODE_STEPS,
    layers: int = LLAMA_LAYERS,
) -> Graph:
    """LLaMA2-13B decode steps for one serving request.

    ``context`` and ``decode_steps`` parameterize the sequence geometry
    (the module constants stay the defaults, so the Table I catalog and
    Fig. 27 keep building the exact paper workload); ``layers`` scales
    the depth for cheap calibration probes.  Non-default geometry gets
    its own graph name so traces never collide in the memo caches.
    """
    if context < 1 or decode_steps < 1 or layers < 1:
        raise ConfigError("llama geometry must be positive")
    name = f"llama13b-b{batch}"
    if (context, decode_steps, layers) != (
        LLAMA_CONTEXT, LLAMA_DECODE_STEPS, LLAMA_LAYERS
    ):
        name = f"{name}-c{context}-d{decode_steps}-l{layers}"
    graph = Graph(name)
    for step in range(decode_steps):
        ctx = context + step
        for layer in range(layers):
            name = f"s{step}.l{layer}"
            layer_norm(graph, f"{name}.ln1", batch, LLAMA_HIDDEN)
            linear(graph, f"{name}.qkv", batch, LLAMA_HIDDEN, 3 * LLAMA_HIDDEN)
            graph.add(
                Softmax(f"{name}.attn", rows=batch * LLAMA_HEADS, cols=ctx)
            )
            linear(graph, f"{name}.proj", batch, LLAMA_HIDDEN, LLAMA_HIDDEN)
            layer_norm(graph, f"{name}.ln2", batch, LLAMA_HIDDEN)
            # SwiGLU FFN: gate+up fused, then down projection.
            linear(
                graph, f"{name}.ffn_gate_up", batch, LLAMA_HIDDEN, 2 * LLAMA_FFN,
                activation=ElementwiseKind.SWISH,
            )
            linear(graph, f"{name}.ffn_down", batch, LLAMA_FFN, LLAMA_HIDDEN)
        linear(graph, f"s{step}.lm_head", batch, LLAMA_HIDDEN, LLAMA_VOCAB)
        graph.add(Softmax(f"s{step}.sample", rows=batch, cols=LLAMA_VOCAB))
    return graph
