"""Model -> executable workload trace.

A :class:`WorkloadTrace` bundles everything an experiment needs for one
(model, batch) pair: the operator graph, its compile-time profile (m, v,
intensity ratio, HBM demand) and the compiled forms for both ISAs.
Traces are memoised -- building the large detection graphs repeatedly
would dominate experiment runtime.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Optional

from repro.compiler.graph import Graph
from repro.compiler.lowering import (
    CompiledGraph,
    lower_graph_neuisa,
    lower_graph_vliw,
)
from repro.compiler.profiler import WorkloadProfile, profile_graph
from repro.config import DEFAULT_CORE, NpuCoreConfig
from repro.workloads.catalog import model_info


@dataclass
class WorkloadTrace:
    """One model at one batch size, ready to simulate."""

    name: str
    abbrev: str
    batch: int
    graph: Graph
    profile: WorkloadProfile
    neuisa: CompiledGraph
    vliw: CompiledGraph
    core: NpuCoreConfig

    def compiled(self, isa: str) -> CompiledGraph:
        if isa == "neuisa":
            return self.neuisa
        if isa == "vliw":
            return self.vliw
        raise ValueError(f"unknown isa {isa!r}")


@lru_cache(maxsize=128)
def _build_trace_cached(
    name: str, batch: int, core: NpuCoreConfig, vliw_mes: int, vliw_ves: int
) -> WorkloadTrace:
    info = model_info(name)
    graph = info.build(batch)
    profile = profile_graph(graph, core)
    neuisa = lower_graph_neuisa(graph, core, batch_hint=batch)
    vliw = lower_graph_vliw(graph, core, vliw_mes, vliw_ves, batch_hint=batch)
    return WorkloadTrace(
        name=info.name,
        abbrev=info.abbrev,
        batch=batch,
        graph=graph,
        profile=profile,
        neuisa=neuisa,
        vliw=vliw,
        core=core,
    )


def build_trace(
    name: str,
    batch: int = 32,
    core: Optional[NpuCoreConfig] = None,
    vliw_mes: Optional[int] = None,
    vliw_ves: Optional[int] = None,
) -> WorkloadTrace:
    """Build (or fetch) the trace for ``name`` at ``batch``.

    ``vliw_mes``/``vliw_ves`` control the engine count baked into the
    VLIW binary (defaults to the whole core, as the temporal-sharing
    baselines assume).
    """
    core = core if core is not None else DEFAULT_CORE
    return _build_trace_cached(
        model_info(name).name,
        batch,
        core,
        vliw_mes if vliw_mes is not None else core.num_mes,
        vliw_ves if vliw_ves is not None else core.num_ves,
    )
