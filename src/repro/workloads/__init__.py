"""DNN workload zoo (paper Table I + the LLaMA case study of Fig. 27).

Each model is a function ``batch_size -> Graph`` built from layer-level
specs.  The graphs are synthetic but calibrated to reproduce the paper's
characterisation (SectionII-B): per-model ME:VE intensity ratios (Fig. 4),
demand variation over time (Fig. 2), and HBM bandwidth behaviour
(Fig. 7).  :mod:`repro.workloads.catalog` is the name->model registry
with Table I metadata; :mod:`repro.workloads.traces` lowers models into
the executable traces the simulator replays.
"""

from repro.workloads.catalog import (
    CATALOG,
    ModelInfo,
    build_model,
    model_info,
    model_names,
)
from repro.workloads.traces import WorkloadTrace, build_trace

__all__ = [
    "CATALOG",
    "ModelInfo",
    "WorkloadTrace",
    "build_model",
    "build_trace",
    "model_info",
    "model_names",
]
