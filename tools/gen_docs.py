#!/usr/bin/env python
"""Generate ``docs/scenario-reference.md`` from the live registries.

The reference tables -- schedulers, arrival processes, workloads,
figure experiments, autoscaler policies, scenario kinds -- are exactly
what ``repro list --json`` reports, rendered as markdown.  Because the
file is *generated*, it cannot drift from the code: CI runs
``tools/gen_docs.py --check`` and fails when a registry changed without
the reference being regenerated.

Usage::

    PYTHONPATH=src python tools/gen_docs.py            # (re)write the file
    PYTHONPATH=src python tools/gen_docs.py --check    # fail if stale
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Iterable, List, Sequence

REPO = Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO / "docs" / "scenario-reference.md"

HEADER = """\
# Scenario reference

<!-- GENERATED FILE - DO NOT EDIT.
     Regenerate with: PYTHONPATH=src python tools/gen_docs.py
     CI checks staleness with: tools/gen_docs.py --check -->

Everything in this file is read from the live plugin registries
(`repro.api.SCHEDULERS` / `ARRIVALS` / `WORKLOADS` / `FIGURES` /
`AUTOSCALERS` / `PREEMPTION`), the same source `repro list --json`
reports, so it cannot drift from the code.  Third-party plugins
registered at runtime extend these tables without any documentation
edit -- see [architecture.md](architecture.md) for how the registries
fit together, [autoscaling.md](autoscaling.md) for the autoscaler
how-to, [llm-serving.md](llm-serving.md) for the LLM serving
subsystem, [sweeps.md](sweeps.md) for checkpointed, fault-tolerant
sweeps and [fuzzing.md](fuzzing.md) for the metamorphic fuzz harness
and fault injection.
"""


def _table(headers: Sequence[str], rows: Iterable[Sequence[str]]) -> List[str]:
    out = ["| " + " | ".join(headers) + " |",
           "| " + " | ".join("---" for _ in headers) + " |"]
    for row in rows:
        out.append("| " + " | ".join(row) + " |")
    return out


def generate() -> str:
    from repro.api import (
        ARRIVALS,
        AUTOSCALERS,
        FIGURES,
        SCENARIO_KINDS,
        SCHEDULERS,
        WORKLOADS,
    )

    lines: List[str] = [HEADER]

    lines.append("## Scenario kinds\n")
    lines.append("`kind:` of a scenario file selects the engine a run "
                 "goes through (`repro run <file.yaml>`):\n")
    kind_blurbs = {
        "serving": "closed-loop collocation (run until every tenant hits "
                   "`target_requests`)",
        "open_loop": "open-loop traffic on one core, scored against "
                     "per-tenant SLOs",
        "cluster": "open-loop traffic across an (optionally autoscaled) "
                   "cluster with tenant churn",
        "llm": "continuous-batching LLM serving under a KV-cache HBM "
               "budget with pluggable preemption (`llm:` block)",
        "figure": "a registered paper-figure experiment (`figure:` names "
                  "it)",
    }
    lines.extend(_table(
        ("kind", "what runs"),
        [(k, kind_blurbs.get(k, "")) for k in SCENARIO_KINDS],
    ))

    lines.append("\n## Scheduler schemes (`scheme:`)\n")
    lines.extend(_table(
        ("name", "ISA", "default set", "description"),
        [
            (name, info.isa, "yes" if info.default else "no",
             info.description)
            for name, info in SCHEDULERS.items()
        ],
    ))

    lines.append("\n## Arrival processes (`arrival:`)\n")
    lines.extend(_table(
        ("name", "description"),
        [(name, info.description) for name, info in ARRIVALS.items()],
    ))

    lines.append("\n## Workloads (`tenants[].model` / churn `model`)\n")
    lines.extend(_table(
        ("name", "abbrev", "category", "HBM footprint @ batch 8"),
        [
            (info.name, info.abbrev, info.category,
             f"{info.hbm_footprint_bytes / 2**30:.2f} GiB")
            for _name, info in WORKLOADS.items()
        ],
    ))

    lines.append("\n## Figure experiments (`repro fig`, `kind: figure`)\n")
    lines.extend(_table(
        ("name", "description"),
        [(name, info.description) for name, info in FIGURES.items()],
    ))

    lines.append("\n## Autoscaler policies (`autoscaler.policy`)\n")
    lines.append("Cluster scenarios close the loop with an `autoscaler:` "
                 "block; `params:` go to the policy constructor "
                 "(see [autoscaling.md](autoscaling.md)):\n")
    lines.extend(_table(
        ("name", "description"),
        [(name, info.description) for name, info in AUTOSCALERS.items()],
    ))

    from repro.api import VIRTUALIZATION_FIELD_DOCS

    lines.append("\n## Virtualization control plane (`virtualization:`)\n")
    lines.append("Cluster scenarios opt into binding SR-IOV/hypercall "
                 "semantics with a `virtualization:` block; its presence "
                 "enables the control-plane metrics (hypercall counts, "
                 "VF-occupancy timeline, VF-exhaustion rejections) on the "
                 "result, and omitting it keeps results bit-identical to "
                 "pre-virtualization releases (see "
                 "[architecture.md](architecture.md)):\n")
    lines.extend(_table(
        ("field", "meaning"),
        [(name, blurb) for name, blurb in VIRTUALIZATION_FIELD_DOCS.items()],
    ))

    from repro.api import LLM_FIELD_DOCS, PREEMPTION

    lines.append("\n## Preemption victim policies (`llm.victim_policy`)\n")
    lines.append("LLM scenarios resolve who gets evicted under KV-cache "
                 "pressure through the `PREEMPTION` registry "
                 "(see [llm-serving.md](llm-serving.md)):\n")
    lines.extend(_table(
        ("name", "description"),
        [(name, info.description) for name, info in PREEMPTION.items()],
    ))

    lines.append("\n## LLM serving (`llm:`)\n")
    lines.append("`kind: llm` scenarios drive the continuous-batching "
                 "engine (`repro.llmserve`): open-loop tenants decode "
                 "against a per-step batch token budget and a device HBM "
                 "KV budget, preempting under pressure (see "
                 "[llm-serving.md](llm-serving.md)):\n")
    lines.extend(_table(
        ("field", "meaning"),
        [(name, blurb) for name, blurb in LLM_FIELD_DOCS.items()],
    ))

    from repro.api import EXECUTOR_FIELD_DOCS, EXECUTORS

    lines.append("\n## Executor backends (`executor.backend`, "
                 "`sweep --executor`)\n")
    lines.append("Sweeps and cluster host fan-out run through a "
                 "pluggable executor (`repro.exec`); the backend only "
                 "changes *how* points run (parallelism, timeouts, crash "
                 "isolation), never the simulated results (see "
                 "[sweeps.md](sweeps.md)):\n")
    lines.extend(_table(
        ("name", "description"),
        [(name, info.description) for name, info in EXECUTORS.items()],
    ))

    lines.append("\n## Executor block (`executor:`)\n")
    lines.append("Any scenario kind may carry an `executor:` block; "
                 "`repro sweep` flags (`--executor`, `--task-timeout`, "
                 "`--keep-going`, `--workers`) override it per "
                 "invocation without changing the scenario's digest:\n")
    lines.extend(_table(
        ("field", "meaning"),
        [(name, blurb) for name, blurb in EXECUTOR_FIELD_DOCS.items()],
    ))

    from repro.api import FAULT_FIELD_DOCS
    from repro.cluster.virt import FAULT_KINDS

    lines.append("\n## Fault injection (`faults:`)\n")
    lines.append("Cluster scenarios may declare a `faults:` list of "
                 "injected failures (" +
                 ", ".join(f"`{k}`" for k in FAULT_KINDS) +
                 "); each applied fault lands in the result's "
                 "`fault_events` audit log, and an empty list keeps "
                 "results bit-identical to fault-free releases (see "
                 "[fuzzing.md](fuzzing.md) for the adversarial harness "
                 "built on top):\n")
    lines.extend(_table(
        ("field", "meaning"),
        [(name, blurb) for name, blurb in FAULT_FIELD_DOCS.items()],
    ))

    from repro.api import CHECKPOINT_FIELD_DOCS

    lines.append("\n## Segment checkpoints (`checkpoint:`)\n")
    lines.append("Cluster scenarios may declare a `checkpoint:` block "
                 "(or pass `repro run --checkpoint DIR`): the run "
                 "journals a versioned, digest-stamped snapshot at "
                 "segment boundaries, and `repro run --resume` restores "
                 "the newest one and finishes bit-identically to an "
                 "uninterrupted run.  The same snapshots drive "
                 "`repro serve` live control (see "
                 "[live-control.md](live-control.md)):\n")
    lines.extend(_table(
        ("field", "meaning"),
        [(name, blurb) for name, blurb in CHECKPOINT_FIELD_DOCS.items()],
    ))

    lines.append("")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--check", action="store_true",
                        help="exit 1 if the checked-in reference is stale")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    args = parser.parse_args(argv)

    content = generate()
    if args.check:
        if not args.output.exists():
            print(f"STALE: {args.output} does not exist; "
                  "run tools/gen_docs.py", file=sys.stderr)
            return 1
        on_disk = args.output.read_text(encoding="utf-8")
        if on_disk != content:
            print(f"STALE: {args.output} does not match the live "
                  "registries; run tools/gen_docs.py and commit the result",
                  file=sys.stderr)
            return 1
        print(f"{args.output} is up to date")
        return 0
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(content, encoding="utf-8")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
