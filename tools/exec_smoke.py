#!/usr/bin/env python
"""End-to-end smoke for checkpointed sweeps: run, SIGKILL, resume, diff.

The CI ``exec-smoke`` job's script.  It exercises the whole
``repro.exec`` story through the real CLI, as three subprocess runs:

1. an uninterrupted ``repro sweep --executor serial`` (the reference);
2. a ``--executor local-queue --checkpoint DIR`` run whose process
   group is SIGKILLed as soon as the journal shows progress -- parent
   and spawned workers die mid-flight, leaving a partial (possibly
   torn) journal;
3. a ``--checkpoint DIR --resume`` run that replays the journal and
   finishes the sweep.

The resumed output must be **bit-identical** to the reference.  Exit 0
on success, 1 with a diagnostic on any mismatch.

Usage::

    PYTHONPATH=src python tools/exec_smoke.py [--points N] [--keep DIR]
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

SCENARIO = {
    "name": "exec-smoke",
    "kind": "open_loop",
    "scheme": "neu10",
    "duration_s": 0.0012,
    "load": 0.8,
    "seed": 11,
    "tenants": [{"model": "MNIST", "batch": 8}],
}


def _sweep_cmd(scenario_file: Path, values: str, extra: list) -> list:
    return [
        sys.executable, "-m", "repro.cli", "sweep", str(scenario_file),
        "--param", "load", "--values", values, *extra,
    ]


def _env() -> dict:
    env = dict(os.environ)
    src = str(REPO / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else f"{src}:{existing}"
    return env


def _journal_results(journal: Path) -> int:
    if not journal.exists():
        return 0
    return sum(
        1 for line in journal.read_text(encoding="utf-8").splitlines()
        if '"result"' in line
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--points", type=int, default=12,
                        help="sweep points (load values)")
    parser.add_argument("--keep", type=Path, default=None,
                        help="work under DIR and keep it (default: tmp)")
    args = parser.parse_args(argv)

    if args.keep is not None:
        args.keep.mkdir(parents=True, exist_ok=True)
        work = args.keep
    else:
        work = Path(tempfile.mkdtemp(prefix="exec-smoke-"))
    values = ",".join(
        str(round(0.4 + 0.05 * i, 2)) for i in range(args.points)
    )
    scenario_file = work / "scenario.json"
    scenario_file.write_text(json.dumps(SCENARIO), encoding="utf-8")
    ck = work / "ck"
    env = _env()

    # 1. Uninterrupted serial reference.
    ref_out = work / "reference.json"
    subprocess.run(
        _sweep_cmd(scenario_file, values,
                   ["--executor", "serial", "--json",
                    "--output", str(ref_out), "--no-progress"]),
        check=True, env=env, cwd=REPO, timeout=600,
    )
    reference = json.loads(ref_out.read_text(encoding="utf-8"))
    print(f"reference: {len(reference)} point(s)")

    # 2. Checkpointed local-queue run, killed mid-flight.
    proc = subprocess.Popen(
        _sweep_cmd(scenario_file, values,
                   ["--executor", "local-queue", "--workers", "2",
                    "--checkpoint", str(ck), "--json"]),
        env=env, cwd=REPO, start_new_session=True,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    journal = ck / "journal.jsonl"
    landed = 0
    try:
        deadline = time.monotonic() + 300.0
        while time.monotonic() < deadline:
            if proc.poll() is not None:
                break
            landed = _journal_results(journal)
            if landed >= 2:
                os.killpg(proc.pid, signal.SIGKILL)
                print(f"SIGKILLed the sweep after {landed} shard(s)")
                break
            time.sleep(0.05)
        proc.wait(timeout=60)
    finally:
        if proc.poll() is None:
            os.killpg(proc.pid, signal.SIGKILL)
            proc.wait(timeout=60)

    done = _journal_results(journal)
    if done == 0:
        print("FAIL: no shard reached the journal before the kill",
              file=sys.stderr)
        return 1
    if done >= args.points and proc.returncode == 0:
        print("FAIL: sweep finished before the kill landed; "
              "raise --points", file=sys.stderr)
        return 1
    print(f"journal holds {done}/{args.points} shard(s) after the kill")

    # 3. Resume (different backend, same journal) and diff.
    resumed_out = work / "resumed.json"
    resumed = subprocess.run(
        _sweep_cmd(scenario_file, values,
                   ["--executor", "serial", "--checkpoint", str(ck),
                    "--resume", "--json", "--output", str(resumed_out)]),
        env=env, cwd=REPO, timeout=600,
        capture_output=True, text=True,
    )
    if resumed.returncode != 0:
        print(f"FAIL: resume exited {resumed.returncode}:\n"
              f"{resumed.stderr}", file=sys.stderr)
        return 1
    sys.stderr.write(resumed.stderr)
    merged = json.loads(resumed_out.read_text(encoding="utf-8"))

    if merged != reference:
        for i, (a, b) in enumerate(zip(merged, reference)):
            if a != b:
                print(f"FAIL: point {i} differs:\n  resumed:   {a}\n"
                      f"  reference: {b}", file=sys.stderr)
                break
        else:
            print(f"FAIL: length mismatch {len(merged)} vs "
                  f"{len(reference)}", file=sys.stderr)
        return 1

    print(f"OK: resumed output is bit-identical to the uninterrupted "
          f"run ({len(merged)} point(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
