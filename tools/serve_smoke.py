#!/usr/bin/env python
"""End-to-end smoke for ``repro serve``: advance, SIGKILL, restore, diff.

The CI ``serve-smoke`` job's script.  It exercises the live-control
story through the real CLI, across a hard process death:

1. an uninterrupted ``repro run --json`` (the reference);
2. a ``repro serve`` server advanced part-way over HTTP, snapshotted,
   then SIGKILLed -- the snapshot JSON is all that survives;
3. a *fresh* ``repro serve`` process that restores the snapshot over
   HTTP and advances to completion.

The restored run's ``/metrics`` must be **bit-identical** to the
reference.  Exit 0 on success, 1 with a diagnostic on any mismatch.

Usage::

    PYTHONPATH=src python tools/serve_smoke.py [--keep DIR]
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
import urllib.request
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

SCENARIO = {
    "name": "serve-smoke",
    "kind": "cluster",
    "scheme": "neu10",
    "duration_s": 0.003,
    "load": 0.7,
    "seed": 23,
    "hosts": 2,
    "cores_per_host": 1,
    "autoscaler": {"policy": "threshold", "interval_s": 0.0006},
    "virtualization": {"num_vfs": 4, "hypercall_cost_s": 0.00002},
    "faults": [
        {"kind": "burst-storm", "time_s": 0.001, "duration_s": 0.0008,
         "factor": 2.0},
    ],
    "churn": [
        {"time_s": 0.0, "action": "arrive", "name": "a",
         "model": "MNIST", "batch": 4, "num_mes": 2, "num_ves": 2},
        {"time_s": 0.0012, "action": "arrive", "name": "b",
         "model": "NCF", "batch": 4, "num_mes": 2, "num_ves": 2},
    ],
}


def _env() -> dict:
    env = dict(os.environ)
    src = str(REPO / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else f"{src}:{existing}"
    return env


def _start_server(scenario_file: Path, env: dict, restore_key=None):
    """Start ``repro serve``; return (proc, base_url, restore_key).

    ``restore_key`` lets a replacement server accept snapshots signed
    by a dead one; without it the server mints (and announces) a fresh
    key.
    """
    command = [sys.executable, "-m", "repro.cli", "serve",
               str(scenario_file), "--port", "0"]
    if restore_key is not None:
        command += ["--restore-key", restore_key]
    proc = subprocess.Popen(
        command,
        env=env, cwd=REPO, start_new_session=True,
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True,
    )
    line = proc.stdout.readline()
    if not line:
        raise RuntimeError("serve printed no address line")
    address = json.loads(line)
    base = f"http://{address['host']}:{address['port']}"
    return proc, base, address["restore_key"]


def _kill(proc) -> None:
    if proc.poll() is None:
        os.killpg(proc.pid, signal.SIGKILL)
        proc.wait(timeout=60)


def _get(base: str, path: str):
    with urllib.request.urlopen(base + path, timeout=60) as resp:
        return json.load(resp)


def _post(base: str, path: str, body=None):
    request = urllib.request.Request(
        base + path, data=json.dumps(body or {}).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=600) as resp:
        return json.load(resp)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--keep", type=Path, default=None,
                        help="work under DIR and keep it (default: tmp)")
    args = parser.parse_args(argv)

    if args.keep is not None:
        args.keep.mkdir(parents=True, exist_ok=True)
        work = args.keep
    else:
        work = Path(tempfile.mkdtemp(prefix="serve-smoke-"))
    scenario_file = work / "scenario.json"
    scenario_file.write_text(json.dumps(SCENARIO), encoding="utf-8")
    env = _env()

    # 1. Uninterrupted reference run.
    ref_out = work / "reference.json"
    subprocess.run(
        [sys.executable, "-m", "repro.cli", "run", str(scenario_file),
         "--json", "--output", str(ref_out)],
        check=True, env=env, cwd=REPO, timeout=600,
        stdout=subprocess.DEVNULL,
    )
    reference = json.loads(ref_out.read_text(encoding="utf-8"))
    print("reference run complete")

    # 2. Serve, advance part-way, snapshot, SIGKILL.
    proc, base, restore_key = _start_server(scenario_file, env)
    try:
        status = _get(base, "/status")
        total = status["total_segments"]
        cut = max(1, total // 2)
        reply = _post(base, "/advance", {"segments": cut})
        print(f"advanced {len(reply['segments'])} of {total} segment(s) "
              "over HTTP")
        snapshot = _get(base, "/snapshot")
        (work / "snapshot.json").write_text(
            json.dumps(snapshot), encoding="utf-8"
        )
    finally:
        _kill(proc)
    print(f"SIGKILLed the server at segment {snapshot['segment_index']}")

    # 3. Fresh server sharing the dead one's restore key (the snapshot
    # is signed with it), restore, finish, diff.
    proc, base, _ = _start_server(scenario_file, env, restore_key)
    try:
        restored = _post(base, "/restore", snapshot)
        if restored["segments_completed"] != snapshot["segment_index"]:
            print("FAIL: restore did not land on the snapshot segment",
                  file=sys.stderr)
            return 1
        _post(base, "/advance", {"until_s": SCENARIO["duration_s"]})
        if not _get(base, "/status")["done"]:
            print("FAIL: run not done after advancing to the horizon",
                  file=sys.stderr)
            return 1
        metrics = _get(base, "/metrics")
    finally:
        _kill(proc)

    if metrics != reference:
        diff_keys = [
            k for k in sorted(set(metrics) | set(reference))
            if metrics.get(k) != reference.get(k)
        ]
        print(f"FAIL: restored metrics differ from the reference "
              f"(keys: {diff_keys})", file=sys.stderr)
        return 1
    print("OK: metrics after cross-process restore are bit-identical "
          "to the uninterrupted run")
    return 0


if __name__ == "__main__":
    sys.exit(main())
