#!/usr/bin/env python
"""Check that relative markdown links in docs/ and README.md resolve.

Scans every ``[text](target)`` link; ``http(s)``/``mailto`` targets are
skipped (CI must not depend on the network), anchors are stripped, and
the remaining path is resolved relative to the file that contains the
link.  Exits 1 listing every broken link.

Usage::

    python tools/check_links.py            # docs/**/*.md + README.md
    python tools/check_links.py FILE...    # explicit files
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import List

REPO = Path(__file__).resolve().parent.parent

#: [text](target) -- excluding images' leading "!" is unnecessary: image
#: targets must resolve too.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:")


def default_files() -> List[Path]:
    files = sorted((REPO / "docs").glob("**/*.md"))
    readme = REPO / "README.md"
    if readme.exists():
        files.append(readme)
    return files


def check_file(path: Path) -> List[str]:
    failures = []
    text = path.read_text(encoding="utf-8")
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(SKIP_PREFIXES):
            continue
        if target.startswith("#"):
            continue  # intra-document anchor
        resolved = (path.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            failures.append(
                f"{path.relative_to(REPO)}: broken link -> {target}"
            )
    return failures


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    files = [Path(a) for a in argv] if argv else default_files()
    if not files:
        print("no markdown files found", file=sys.stderr)
        return 1
    failures: List[str] = []
    for path in files:
        failures.extend(check_file(path))
    if failures:
        for failure in failures:
            print(f"BROKEN: {failure}", file=sys.stderr)
        return 1
    print(f"all links OK across {len(files)} file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
